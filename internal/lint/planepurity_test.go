package lint_test

import (
	"strings"
	"testing"

	"parsssp/internal/lint"
)

// badPlane exercises the planepurity rules: the constructor and a
// rankGraph method may write plane fields, everything else may not —
// including writes through the fields an embedding queryState promotes,
// and element writes into plane slices.
const badPlane = `package sssp

type rankGraph struct {
	nLocal   int
	shortEnd []int32
}

type queryState struct {
	*rankGraph
	dist []int64
}

func newRankGraph(n int) *rankGraph {
	p := &rankGraph{nLocal: n}
	p.shortEnd = make([]int32, n)
	p.shortEnd[0] = 1
	return p
}

func (p *rankGraph) rebuild(n int) {
	p.nLocal = n
}

func (q *queryState) relax() {
	q.dist[0] = 1
	q.nLocal++
	q.shortEnd[0] = 2
}

func tamper(p *rankGraph, q *queryState) {
	p.nLocal = 3
	q.rankGraph.shortEnd[1] = 4
	local := p.shortEnd
	local[0] = 9
}
`

func TestPlanePurityFlagsWritesOutsideConstructor(t *testing.T) {
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": badPlane}, lint.PlanePurity)
	wantFindings(t, got, []string{
		"bad.go:26:2 planepurity", // q.nLocal++ (promoted through queryState)
		"bad.go:27:2 planepurity", // q.shortEnd[0] = 2 (element write)
		"bad.go:31:2 planepurity", // p.nLocal = 3
		"bad.go:32:2 planepurity", // q.rankGraph.shortEnd[1] = 4 (explicit embed)
	})
	// q.dist (line 25) is queryState's own field; the alias write on
	// line 34 is a documented blind spot. Neither may be flagged — the
	// exact-match list above already proves that.
}

func TestPlanePurityIgnoresPackagesWithoutRankGraph(t *testing.T) {
	// The identical shape under a different type name is not a plane;
	// the analyzer must key off the rankGraph declaration, not field
	// names.
	src := strings.ReplaceAll(badPlane, "rankGraph", "scratchpad")
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": src}, lint.PlanePurity)
	wantFindings(t, got, nil)
}

func TestPlanePuritySuppressedByDirective(t *testing.T) {
	src := `package sssp

type rankGraph struct {
	nLocal int
}

func grow(p *rankGraph) {
	//parssspvet:allow planepurity -- single-threaded re-planning path, no queries in flight
	p.nLocal++
}
`
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": src}, lint.PlanePurity)
	wantFindings(t, got, nil)
}

func TestPlanePurityMessageExplainsSharing(t *testing.T) {
	pkgs := loadFixture(t, map[string]string{"internal/sssp/bad.go": badPlane})
	for _, f := range lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.PlanePurity}) {
		if !strings.Contains(f.Message, "shared read-only") {
			t.Errorf("finding should explain why the write is unsafe: %q", f.Message)
		}
	}
}
