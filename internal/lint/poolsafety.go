package lint

// poolsafety tracks values obtained from buffer/slot pools through the
// dataflow engine and flags the four lifetime bugs the pooling design
// (internal/sssp/pool.go, bucketstore.go, the comm buffer pools) makes
// possible:
//
//	use-after-release  a pooled value is mentioned after being handed
//	                   back to its pool — the pool may already have
//	                   re-issued it to a concurrent query
//	double-release     the same value is handed back twice, so two
//	                   owners will be issued the same buffer
//	leak               a locally-acquired value reaches a non-error
//	                   return still owned: the pool shrinks by one slot
//	                   every time that path runs
//	escape             a pooled value is stored into the shared graph
//	                   plane (a rankGraph field, composing with
//	                   planepurity) or a package-level variable, both of
//	                   which outlive the query that owns the buffer
//
// Pools are detected structurally, not by name matching on the call
// site: a named type with a method called put/release/recycle/free/
// checkin/giveback whose first parameter is a pointer or slice is a
// pool; that parameter's type is its pooled type; the pool's methods
// returning the pooled type are acquisitions, and channel fields of the
// pooled type model hand-off pools (receive acquires, send releases).
// sync.Pool's Get/Put are recognized directly. Functions that release a
// parameter on some path export that fact through the call summaries, so
// a release buried one call deep still counts.
//
// Error returns are exempt from leak checking: on the fail-fast paths
// (PR 3) the whole mesh aborts and the pools are torn down with it.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const poolSafetyName = "poolsafety"

var PoolSafety = &Analyzer{
	Name: poolSafetyName,
	Doc: "track pool-acquired values: flag use-after-release, " +
		"double-release, release-skipping leaks on non-error returns, and " +
		"escapes into the shared plane or package-level state",
	Run: runPoolSafety,
}

// releaseNames are the method names that structurally mark a pool's
// release entry point (lower-cased comparison).
var releaseNames = map[string]bool{
	"put": true, "release": true, "recycle": true,
	"free": true, "checkin": true, "giveback": true,
}

// poolModel is the package's structural pool description, built once by
// detectPools and consulted by the shared evaluator.
type poolModel struct {
	// releases maps a release method to the index (in summary numbering:
	// receiver = 0, so the first proper argument is 1) of the parameter
	// being returned to the pool.
	releases map[*types.Func]int
	// acquires maps a pool method to the result index holding the
	// pooled value.
	acquires map[*types.Func]int
	// chanFields are struct fields typed as channels of a pooled type.
	chanFields map[*types.Var]bool
}

// detectPools builds the structural pool model for a package.
func detectPools(p *Package) *poolModel {
	pm := &poolModel{
		releases:   make(map[*types.Func]int),
		acquires:   make(map[*types.Func]int),
		chanFields: make(map[*types.Var]bool),
	}
	if p.Types == nil {
		return pm
	}
	// Pass 1: find release methods; record each pool type's pooled types.
	pooledOf := make(map[*types.Named][]types.Type)
	scope := p.Types.Scope()
	var namedTypes []*types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		namedTypes = append(namedTypes, named)
		for i := 0; i < named.NumMethods(); i++ {
			fn := named.Method(i)
			if !releaseNames[strings.ToLower(fn.Name())] {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 {
				continue
			}
			v := sig.Params().At(0).Type()
			if !isPoolable(v) {
				continue
			}
			pm.releases[fn] = 1 // receiver is 0; released value is arg 0
			pooledOf[named] = append(pooledOf[named], v)
		}
	}
	// Pass 2: the pool types' methods returning a pooled type acquire it;
	// their channel fields of a pooled type are hand-off channels.
	for _, named := range namedTypes {
		pooled := pooledOf[named]
		if len(pooled) == 0 {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			fn := named.Method(i)
			if _, isRelease := pm.releases[fn]; isRelease {
				continue
			}
			sig := fn.Type().(*types.Signature)
			// A method that also *takes* the pooled type is a rebinder or
			// pass-through, not a mint: it returns an alias of its
			// argument, so treating it as an acquisition would double-track
			// the same value.
			passThrough := false
			for a := 0; a < sig.Params().Len(); a++ {
				if typeInList(sig.Params().At(a).Type(), pooled) {
					passThrough = true
					break
				}
			}
			if passThrough {
				continue
			}
			for r := 0; r < sig.Results().Len(); r++ {
				if typeInList(sig.Results().At(r).Type(), pooled) {
					pm.acquires[fn] = r
					break
				}
			}
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if ch, ok := field.Type().Underlying().(*types.Chan); ok && typeInList(ch.Elem(), pooled) {
					pm.chanFields[field] = true
				}
			}
		}
	}
	return pm
}

// isPoolable reports whether t is a type worth pooling: a pointer to a
// named type or a slice.
func isPoolable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice:
		return true
	}
	return false
}

func typeInList(t types.Type, list []types.Type) bool {
	for _, v := range list {
		if types.Identical(t, v) {
			return true
		}
	}
	return false
}

// releaseArg reports whether call releases a value to a pool, returning
// the index of the released expression in call.Args.
func (pm *poolModel) releaseArg(m *pkgModel, call *ast.CallExpr) (int, bool) {
	fn := m.calleeFunc(call)
	if fn == nil {
		return 0, false
	}
	if idx, ok := pm.releases[fn]; ok {
		return idx - 1, true // summary numbering → call.Args numbering
	}
	if isSyncPoolMethod(m.p, call, "Put") {
		return 0, true
	}
	return 0, false
}

// acquireResult reports whether call acquires a pooled value, returning
// the result index carrying it.
func (pm *poolModel) acquireResult(m *pkgModel, call *ast.CallExpr) (int, bool) {
	fn := m.calleeFunc(call)
	if fn != nil {
		if idx, ok := pm.acquires[fn]; ok {
			return idx, true
		}
	}
	if isSyncPoolMethod(m.p, call, "Get") {
		return 0, true
	}
	return 0, false
}

// isPoolChan reports whether e denotes one of the pool's hand-off
// channel fields.
func (pm *poolModel) isPoolChan(p *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	return ok && pm.chanFields[v]
}

// isSyncPoolMethod reports whether call is (*sync.Pool).Get or Put.
func isSyncPoolMethod(p *Package, call *ast.CallExpr, name string) bool {
	sel := selectorCall(call)
	if sel == nil || sel.Sel.Name != name {
		return false
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// ---- the analyzer ----------------------------------------------------------

func runPoolSafety(p *Package) []Finding {
	m := modelFor(p)
	if len(m.pools.releases) == 0 && len(m.pools.acquires) == 0 &&
		!packageUsesSyncPool(p) {
		return nil
	}
	planeFields := guardedFields(p, "rankGraph")
	var out []Finding
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, poolCheckFunc(m, fd, planeFields)...)
		}
	}
	return out
}

// packageUsesSyncPool is a cheap pre-filter so packages with no pooling
// at all skip the dataflow pass.
func packageUsesSyncPool(p *Package) bool {
	if p.Types == nil {
		return false
	}
	for _, imp := range p.Types.Imports() {
		if imp.Path() == "sync" {
			return true
		}
	}
	return false
}

func poolCheckFunc(m *pkgModel, fd *ast.FuncDecl, planeFields map[types.Object]bool) []Finding {
	p := m.p
	ev := &evaluator{m: m}
	c := buildCFG(fd.Body)
	in := solveForward(c, factMap{}, ev.transfer)

	var out []Finding
	// acquired tracks locally-acquired pooled values, in source order,
	// with the position of the acquisition for leak reporting.
	type acquisition struct {
		obj types.Object
		pos token.Pos
	}
	var acquired []acquisition
	acquiredSet := make(map[types.Object]bool)
	leaked := make(map[types.Object]bool)
	errIdx := errorResultIndex(fd, p)

	recordAcquire := func(lhs ast.Expr, rhs ast.Expr) {
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		isAcquire := false
		if isCall {
			_, isAcquire = m.pools.acquireResult(m, call)
		} else if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			isAcquire = m.pools.isPoolChan(p, u.X)
		}
		if !isAcquire {
			return
		}
		if obj := ev.objectOf(lhs); obj != nil && !acquiredSet[obj] {
			acquiredSet[obj] = true
			acquired = append(acquired, acquisition{obj, rhs.Pos()})
		}
	}

	walkFacts(c, in, ev.transfer, func(f factMap, _ *Block, n ast.Node) {
		// Track local acquisitions.
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recordAcquire(s.Lhs[0], s.Rhs[0])
			} else {
				for i := range s.Lhs {
					if i < len(s.Rhs) {
						recordAcquire(s.Lhs[i], s.Rhs[i])
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 1 && len(vs.Names) >= 1 {
						recordAcquire(vs.Names[0], vs.Values[0])
					}
				}
			}
		}

		// Double-release: a release call whose target is already released.
		releaseTargets := make(map[*ast.Ident]bool)
		if stmtExpr := nodeExpr(n); stmtExpr != nil {
			ast.Inspect(stmtExpr, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				idx, ok := m.pools.releaseArg(m, call)
				if !ok || idx >= len(call.Args) {
					return true
				}
				target := call.Args[idx]
				if id, ok := ast.Unparen(target).(*ast.Ident); ok {
					releaseTargets[id] = true
				}
				if obj := ev.objectOf(target); obj != nil && f[obj]&bitReleased != 0 {
					out = append(out, p.finding(poolSafetyName, call.Pos(),
						"double release of %s: it was already handed back to its pool, which may have re-issued it",
						types.ExprString(target)))
				}
				return true
			})
		}

		// Use-after-release: any other mention of a released value. A
		// plain-identifier store (b = fresh()) is not a use — it starts a
		// new lifetime.
		if s, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					releaseTargets[id] = true
				}
			}
		}
		if stmtExpr := nodeExpr(n); stmtExpr != nil {
			ast.Inspect(stmtExpr, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if !ok || releaseTargets[id] {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil || f[obj]&bitReleased == 0 {
					return true
				}
				out = append(out, p.finding(poolSafetyName, id.Pos(),
					"use of %s after it was released to its pool: the pool may already have re-issued it to a concurrent owner",
					id.Name))
				return true
			})
		}

		// Escape: a still-pooled value stored into the shared plane or a
		// package-level variable.
		if s, ok := n.(*ast.AssignStmt); ok {
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) && len(s.Rhs) != 1 {
					break
				}
				rhs := s.Rhs[min(i, len(s.Rhs)-1)]
				robj := ev.objectOf(rhs)
				if robj == nil || f[robj]&bitPooled == 0 {
					continue
				}
				if dest, kind := escapeDest(p, planeFields, lhs); dest != "" {
					out = append(out, p.finding(poolSafetyName, lhs.Pos(),
						"pooled value %s escapes into %s %s, which outlives the query that owns the buffer",
						types.ExprString(rhs), kind, dest))
				}
			}
		}

		// Leak: at a non-error return, a locally-acquired value is still
		// owned once the deferred releases have run.
		if ret, ok := n.(*ast.ReturnStmt); ok {
			if errIdx >= 0 && returnsNonNilError(ret, errIdx) {
				return // fail-fast path: the mesh aborts, pools are torn down
			}
			snap := f.clone()
			ev.transfer(snap, ret)
			for _, node := range c.Exit.Nodes {
				ev.transfer(snap, node)
			}
			for _, acq := range acquired {
				if leaked[acq.obj] || snap[acq.obj]&bitLive == 0 {
					continue
				}
				leaked[acq.obj] = true
				out = append(out, p.finding(poolSafetyName, acq.pos,
					"%s acquired here is not released on every non-error path: the pool shrinks by one slot each time that path runs",
					acq.obj.Name()))
			}
		}
	})

	// Functions that can fall off the end (no trailing return) exit
	// through the implicit return; check the joined exit facts.
	if fallsOffEnd(fd.Body) {
		exit := exitFacts(c, in, ev.transfer)
		for _, acq := range acquired {
			if leaked[acq.obj] || exit[acq.obj]&bitLive == 0 {
				continue
			}
			leaked[acq.obj] = true
			out = append(out, p.finding(poolSafetyName, acq.pos,
				"%s acquired here is not released on every non-error path: the pool shrinks by one slot each time that path runs",
				acq.obj.Name()))
		}
	}
	return out
}

// nodeExpr extracts the expression content of a CFG node for use
// scanning; nil for nodes with no interesting expressions.
func nodeExpr(n ast.Node) ast.Node {
	switch n.(type) {
	case *ast.ReturnStmt, *ast.AssignStmt, *ast.ExprStmt, *ast.SendStmt,
		*ast.IncDecStmt, *ast.GoStmt, *ast.DeclStmt:
		return n
	case ast.Expr:
		return n
	}
	return nil
}

// escapeDest classifies an escape destination: a rankGraph (plane) field
// or a package-level variable. Returns ("", "") for safe destinations.
func escapeDest(p *Package, planeFields map[types.Object]bool, lhs ast.Expr) (string, string) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[l]; sel != nil && planeFields[sel.Obj()] {
			return sel.Obj().Name(), "shared plane field"
		}
		// Package-level variable through a qualified name.
		if v, ok := p.Info.Uses[l.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Name(), "package-level variable"
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[l].(*types.Var); ok && isPkgLevel(v) {
			return v.Name(), "package-level variable"
		}
	case *ast.IndexExpr:
		return escapeDest(p, planeFields, l.X)
	}
	return "", ""
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// errorResultIndex returns the index of fd's error result, or -1.
func errorResultIndex(fd *ast.FuncDecl, p *Package) int {
	if fd.Type.Results == nil {
		return -1
	}
	errType := types.Universe.Lookup("error").Type()
	i := 0
	for _, field := range fd.Type.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := p.Info.TypeOf(field.Type); t != nil && types.Identical(t, errType) {
			return i
		}
		i += n
	}
	return -1
}

// returnsNonNilError reports whether ret's error result is anything but
// the nil literal. A bare return (named results) is treated as an error
// path too: the value is unknown, and flagging it would punish the
// fail-fast idiom.
func returnsNonNilError(ret *ast.ReturnStmt, errIdx int) bool {
	if len(ret.Results) == 0 {
		return true
	}
	if errIdx >= len(ret.Results) {
		return false
	}
	id, ok := ast.Unparen(ret.Results[errIdx]).(*ast.Ident)
	return !ok || id.Name != "nil"
}

// fallsOffEnd reports whether a body's last statement is not a
// terminating statement, so control can reach the implicit return.
func fallsOffEnd(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ForStmt:
		return last.Cond != nil // for{} never falls through
	case *ast.BlockStmt:
		return fallsOffEnd(last)
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
		return true
	}
	return true
}
