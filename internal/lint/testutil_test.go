package lint_test

// Test scaffolding: analyzer tests build a throwaway on-disk module
// (named "parsssp", so the core-package and comm-layer path checks see
// the same import paths as the real repository), load it with the real
// loader, and assert the exact file:line:column of every finding.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parsssp/internal/lint"
)

// fixtureGoMod is prepended to every fixture module.
const fixtureGoMod = "module parsssp\n\ngo 1.22\n"

// loadFixture writes files (path -> contents, slash-separated paths
// relative to the module root) into a temp module and loads every
// package in it.
func loadFixture(t *testing.T, files map[string]string) []*lint.Package {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte(fixtureGoMod), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Fatalf("fixture %s does not type-check: %v", p.Path, e)
		}
	}
	return pkgs
}

// runFixture runs one analyzer (plus the directive checks applied by
// RunAnalyzers) over a fixture and renders each finding as
// "file.go:line:col analyzer".
func runFixture(t *testing.T, files map[string]string, a *lint.Analyzer) []string {
	t.Helper()
	pkgs := loadFixture(t, files)
	findings := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	var out []string
	for _, f := range findings {
		out = append(out, fmt.Sprintf("%s:%d:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer))
	}
	return out
}

// wantFindings asserts got == want elementwise (both are sorted by
// position already, courtesy of RunAnalyzers).
func wantFindings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
