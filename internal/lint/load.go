package lint

// The loader turns "./..."-style patterns into fully type-checked
// packages using only the standard library. Module-local packages are
// parsed and type-checked here, in import-dependency order; imports that
// leave the module (the standard library) are delegated to go/importer's
// from-source importer, which needs no pre-compiled export data and no
// network access.
//
// Test files (*_test.go) are deliberately excluded: external test
// packages would need a second type-checking universe per directory, and
// the invariants parssspvet enforces concern the shipped runtime, not the
// test harnesses.

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (module path + directory).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the module-wide file set (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's syntax annotations.
	Info *types.Info
	// TypeErrors collects type-checking problems; analysis proceeds
	// best-effort when non-empty.
	TypeErrors []error

	// model caches the dataflow package model (see modelFor). Each
	// package is analyzed by exactly one goroutine, so no lock is needed.
	model interface{}
}

// Module loads and caches the packages of one Go module.
type Module struct {
	// Path is the module path declared in go.mod.
	Path string
	// Root is the absolute directory containing go.mod.
	Root string

	fset    *token.FileSet
	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool     // cycle detection
	std     types.Importer
}

// LoadModule locates the module containing dir (walking up to the
// nearest go.mod) and prepares a loader for it.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Module{
		Path:    modPath,
		Root:    root,
		fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", file)
}

// Load resolves the given patterns (relative to the module root;
// "./..." loads the whole module, "./x/..." a subtree, "./x" a single
// package) and returns the matched packages sorted by import path.
func (m *Module) Load(patterns ...string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		dirs, err := m.expandPattern(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			dirSet[d] = true
		}
	}
	var dirs []string
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := m.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// expandPattern maps one pattern to the package directories it names.
func (m *Module) expandPattern(pat string) ([]string, error) {
	recursive := false
	if pat == "..." {
		pat = "./..."
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" || pat == "." {
			pat = "."
		}
	}
	base := filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	if rel, err := filepath.Rel(m.Root, base); err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: pattern %q escapes module root", pat)
	}
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("lint: no Go files in %s", base)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a buildable non-test Go file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// importPathOf maps an absolute package directory to its import path.
func (m *Module) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return m.Path, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, m.Root)
	}
	return m.Path + "/" + filepath.ToSlash(rel), nil
}

// dirOf maps a module-local import path back to its directory.
func (m *Module) dirOf(path string) string {
	if path == m.Path {
		return m.Root
	}
	return filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(path, m.Path+"/")))
}

// loadDir loads the package in dir (nil if dir has no Go files).
func (m *Module) loadDir(dir string) (*Package, error) {
	path, err := m.importPathOf(dir)
	if err != nil {
		return nil, err
	}
	return m.load(path)
}

// load type-checks the package with the given module-local import path,
// memoized for the lifetime of the Module.
func (m *Module) load(path string) (*Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	dir := m.dirOf(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgNames := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", e.Name(), err)
		}
		files = append(files, f)
		pkgNames[f.Name.Name] = true
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if len(pkgNames) > 1 {
		return nil, fmt.Errorf("lint: multiple package names in %s", dir)
	}

	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  m.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer:    importerFunc(m.importPkg),
		FakeImportC: true,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	// Check returns the first error too; all errors are already in
	// TypeErrors via the handler, so the return is deliberately ignored
	// and analysis proceeds best-effort on partial type information.
	tpkg, _ := conf.Check(path, m.fset, files, p.Info)
	p.Types = tpkg
	m.pkgs[path] = p
	return p, nil
}

// importPkg resolves one import during type checking: module-local
// paths recurse into the loader, everything else goes to the from-source
// standard-library importer.
func (m *Module) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		p, err := m.load(path)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, errors.New("lint: no type information for " + path)
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
