package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags struct fields that one function accesses through
// sync/atomic while another function loads or stores them plainly — the
// classic tentative-distance-array race: a worker publishing distances
// with atomic.Store while a reader on another goroutine reads the slice
// element directly. Mixing the two access modes on the same word is a
// data race even when each side looks locally correct.
//
// The unit of "function" is the outermost function declaration: closures
// are attributed to the declaration that contains them, so the common
// worker-pool shape — atomic operations inside spawned closures, plain
// reads after the WaitGroup barrier in the same function — is not
// flagged. Plain accesses in composite literals (initialization before
// the value is shared) are likewise exempt.
const atomicMixName = "atomicmix"

var AtomicMix = &Analyzer{
	Name: atomicMixName,
	Doc: "flag struct fields accessed via sync/atomic in one function " +
		"but by plain load/store in another",
	Run: runAtomicMix,
}

// atomicFieldInfo records where a field is accessed atomically.
type atomicFieldInfo struct {
	funcs map[string]bool // top-level functions with atomic accesses
	fn    string          // one of them, for the message
	pos   token.Pos       // first atomic site, for the message
}

type fieldUse struct {
	obj *types.Var
	fn  string
	pos token.Pos
	sel string
}

func runAtomicMix(p *Package) []Finding {
	atomicFields := make(map[*types.Var]*atomicFieldInfo)
	var plain []fieldUse
	excluded := make(map[token.Pos]bool) // selector sites consumed by atomic calls / composite keys

	walkFunc := func(fn string, body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if field, selNode := atomicFieldArg(p, n); field != nil {
					excluded[selNode.Pos()] = true
					info := atomicFields[field]
					if info == nil {
						info = &atomicFieldInfo{funcs: make(map[string]bool), fn: fn, pos: n.Pos()}
						atomicFields[field] = info
					}
					info.funcs[fn] = true
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						excluded[kv.Key.Pos()] = true
					}
				}
			case *ast.SelectorExpr:
				if excluded[n.Pos()] || excluded[n.Sel.Pos()] {
					return true
				}
				if v, ok := p.Info.Uses[n.Sel].(*types.Var); ok && v.IsField() {
					plain = append(plain, fieldUse{obj: v, fn: fn, pos: n.Pos(), sel: types.ExprString(n)})
				}
			}
			return true
		})
	}

	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					walkFunc(funcDisplayName(d), d.Body)
				}
			case *ast.GenDecl:
				walkFunc("package-level initialization", d)
			}
		}
	}

	var out []Finding
	reported := make(map[string]bool) // one finding per (field, function)
	for _, use := range plain {
		info := atomicFields[use.obj]
		if info == nil || info.funcs[use.fn] {
			continue
		}
		key := use.obj.Id() + "\x00" + use.fn
		if reported[key] {
			continue
		}
		reported[key] = true
		out = append(out, p.finding(atomicMixName, use.pos,
			"field %s is accessed atomically in %s (%s) but plainly here in %s; every shared access must go through sync/atomic",
			use.sel, info.fn, p.Fset.Position(info.pos), use.fn))
	}
	return out
}

// atomicFieldArg reports whether call is a sync/atomic operation whose
// address argument is a struct field, returning the field object and the
// selector syntax node.
func atomicFieldArg(p *Package, call *ast.CallExpr) (*types.Var, *ast.SelectorExpr) {
	sel := selectorCall(call)
	if sel == nil || p.pkgNamePath(sel.X) != "sync/atomic" || len(call.Args) == 0 {
		return nil, nil
	}
	addr, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil, nil
	}
	fieldSel, ok := addr.X.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	if v, ok := p.Info.Uses[fieldSel.Sel].(*types.Var); ok && v.IsField() {
		return v, fieldSel
	}
	return nil, nil
}

// funcDisplayName renders a function declaration's name, including the
// receiver type for methods.
func funcDisplayName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		return "(" + types.ExprString(d.Recv.List[0].Type) + ")." + d.Name.Name
	}
	return d.Name.Name
}
