package lint

// The forward dataflow engine shared by the flow-sensitive analyzers.
// Facts are per-variable bitmasks (factMap); the solver iterates a
// monotone transfer function over the CFG with OR-join until fixpoint,
// and walkFacts replays the transfer so a visitor can observe the facts
// in force immediately before each node.
//
// The bit layout is shared by every client so that one evaluator — and
// one per-package summary table — serves all three analyzers:
//
//	bits 0..15   "derived from parameter i" (receiver = parameter 0);
//	             only meaningful inside summaries, substituted with the
//	             argument masks at call sites
//	bitRank      rank-varying: differs across SPMD ranks (collectiveorder)
//	bitWire      wire-tainted: attacker-controlled integer decoded from
//	             the wire, not yet bounds-checked (wiretaint)
//	bitPooled    obtained from a buffer/slot pool (poolsafety)
//	bitLive      pooled and still owned by this function: not yet
//	             released, returned, or transferred away (poolsafety)
//	bitReleased  handed back to its pool; any later mention is a
//	             use-after-release (poolsafety)

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	maxParams = 16

	bitRank     uint32 = 1 << 16
	bitWire     uint32 = 1 << 17
	bitPooled   uint32 = 1 << 18
	bitLive     uint32 = 1 << 19
	bitReleased uint32 = 1 << 20

	paramBits uint32 = 1<<maxParams - 1
)

// paramBit returns the "derived from parameter i" bit, or 0 when the
// function has more parameters than the mask can distinguish.
func paramBit(i int) uint32 {
	if i >= 0 && i < maxParams {
		return 1 << uint(i)
	}
	return 0
}

// factMap carries one program point's facts: a bitmask per variable.
type factMap map[types.Object]uint32

func (f factMap) clone() factMap {
	c := make(factMap, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// joinFrom ORs other into f, reporting whether f changed.
func (f factMap) joinFrom(other factMap) bool {
	changed := false
	for k, v := range other {
		if f[k]|v != f[k] {
			f[k] |= v
			changed = true
		}
	}
	return changed
}

// solveForward computes the fact map at entry to every block of c,
// starting from entry facts at the CFG entry. transfer must be monotone
// (it may only add bits, or perform strong updates whose result does not
// depend on removed bits) — with OR-join that guarantees termination.
// Unreachable blocks get a nil map.
func solveForward(c *CFG, entry factMap, transfer func(factMap, ast.Node)) []factMap {
	in := make([]factMap, len(c.Blocks))
	in[c.Entry.ID] = entry.clone()
	work := []*Block{c.Entry}
	queued := make([]bool, len(c.Blocks))
	queued[c.Entry.ID] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.ID] = false
		f := in[b.ID].clone()
		for _, n := range b.Nodes {
			transfer(f, n)
		}
		for _, s := range b.Succs {
			changed := false
			if in[s.ID] == nil {
				in[s.ID] = f.clone()
				changed = true
			} else if in[s.ID].joinFrom(f) {
				changed = true
			}
			if changed && !queued[s.ID] {
				queued[s.ID] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// walkFacts replays the transfer over every reachable block, calling
// visit with the facts in force immediately *before* each node takes
// effect. Visit order follows block IDs, which approximate source order.
func walkFacts(c *CFG, in []factMap, transfer func(factMap, ast.Node), visit func(f factMap, b *Block, n ast.Node)) {
	for _, b := range c.Blocks {
		if in[b.ID] == nil {
			continue
		}
		f := in[b.ID].clone()
		for _, n := range b.Nodes {
			visit(f, b, n)
			transfer(f, n)
		}
	}
}

// exitFacts returns the facts after the Exit block's nodes (the deferred
// calls) have run — the state at every function exit, joined.
func exitFacts(c *CFG, in []factMap, transfer func(factMap, ast.Node)) factMap {
	f := in[c.Exit.ID]
	if f == nil {
		return factMap{}
	}
	f = f.clone()
	for _, n := range c.Exit.Nodes {
		transfer(f, n)
	}
	return f
}

// ---- the package model -----------------------------------------------------

// pkgModel is the per-package semantic model the flow-sensitive
// analyzers share: the comm collective interfaces, the structural pool
// model, and the function summaries. Built lazily, once per package.
type pkgModel struct {
	p         *Package
	transport []*types.Interface
	pools     *poolModel
	sums      map[*types.Func]*funcSummary
}

// modelFor returns the package's cached model, building it on first use.
// Packages are analyzed by a single goroutine each (see RunAnalyzers'
// parallel driver), so the cache needs no lock.
func modelFor(p *Package) *pkgModel {
	if p.model == nil {
		m := &pkgModel{
			p:         p,
			transport: transportInterfaces(p),
			pools:     detectPools(p),
		}
		p.model = m
		m.computeSummaries()
	}
	return p.model.(*pkgModel)
}

// collectiveName returns the method name when call is one of the comm
// collectives (Exchange, ExchangeV, AllreduceInt64, Barrier) invoked on
// a type implementing comm.Transport or comm.GatherExchanger. Rank,
// Size, and Close are not collectives.
func (m *pkgModel) collectiveName(call *ast.CallExpr) (string, bool) {
	sel := selectorCall(call)
	if sel == nil {
		return "", false
	}
	switch sel.Sel.Name {
	case "Exchange", "ExchangeV", "AllreduceInt64", "Barrier":
	default:
		return "", false
	}
	for _, iface := range m.transport {
		if isTransportMethodCall(m.p, call, iface) {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// isRankCall reports whether call is Rank() on a transport.
func (m *pkgModel) isRankCall(call *ast.CallExpr) bool {
	sel := selectorCall(call)
	if sel == nil || sel.Sel.Name != "Rank" || len(call.Args) != 0 {
		return false
	}
	for _, iface := range m.transport {
		if isTransportMethodCall(m.p, call, iface) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes: a plain function,
// a method, or a method value. Nil for builtins, conversions, function
// values, and interface methods outside the summary table.
func (m *pkgModel) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := m.p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel := m.p.Info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := m.p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// summaryFor returns the summary of the package-local function a call
// invokes, or nil.
func (m *pkgModel) summaryFor(call *ast.CallExpr) *funcSummary {
	if fn := m.calleeFunc(call); fn != nil {
		return m.sums[fn]
	}
	return nil
}

// ---- the shared evaluator --------------------------------------------------

// evaluator computes expression masks and node transfer effects against
// a package model. params maps the enclosing function's parameter (and
// receiver) objects to their index, for summary construction; it may be
// nil when analyzing a function body directly.
type evaluator struct {
	m      *pkgModel
	params map[types.Object]int
}

// objectOf resolves an expression to the variable it names, unwrapping
// parens and pointer dereferences: the granularity facts are tracked at.
func (ev *evaluator) objectOf(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if obj := ev.m.p.Info.Uses[x]; obj != nil {
				return obj
			}
			return ev.m.p.Info.Defs[x]
		default:
			return nil
		}
	}
}

// maskOf evaluates the fact mask of an expression under facts f.
func (ev *evaluator) maskOf(f factMap, e ast.Expr) uint32 {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := ev.objectOf(e); obj != nil {
			return f[obj]
		}
	case *ast.ParenExpr:
		return ev.maskOf(f, e.X)
	case *ast.StarExpr:
		return ev.maskOf(f, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			// Channel receive: acquiring from a pool channel yields a
			// pooled value; anything else is untracked.
			if ev.m.pools.isPoolChan(ev.m.p, e.X) {
				return bitPooled | bitLive
			}
			return 0
		}
		return ev.maskOf(f, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Boolean results carry the operands' rank-variance (a
			// condition comparing Rank() against anything is itself
			// rank-varying) but never wire taint.
			return (ev.maskOf(f, e.X) | ev.maskOf(f, e.Y)) & bitRank
		case token.AND, token.REM, token.AND_NOT:
			// Masking and modulo bound the result: the canonical
			// wire-taint sanitizers (v & 0xff, v % len(table)).
			l, r := ev.maskOf(f, e.X), ev.maskOf(f, e.Y)
			if r&bitWire == 0 || l&bitWire == 0 {
				return (l | r) &^ bitWire
			}
			return l | r
		default:
			return ev.maskOf(f, e.X) | ev.maskOf(f, e.Y)
		}
	case *ast.IndexExpr:
		// Elements of a tainted container are tainted; indexing with a
		// rank-derived index makes the result rank-varying.
		return ev.maskOf(f, e.X) | ev.maskOf(f, e.Index)&bitRank
	case *ast.SliceExpr:
		return ev.maskOf(f, e.X)
	case *ast.TypeAssertExpr:
		return ev.maskOf(f, e.X)
	case *ast.SelectorExpr:
		// Qualified identifier (pkg.Var) or field/method read.
		if obj := ev.m.p.Info.Uses[e.Sel]; obj != nil {
			if v, ok := f[obj]; ok {
				return v
			}
		}
		if sel := ev.m.p.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			if strings.EqualFold(sel.Obj().Name(), "rank") {
				return bitRank
			}
		}
	case *ast.CallExpr:
		var out uint32
		for _, m := range ev.resultMasks(f, e) {
			out |= m
		}
		return out
	case *ast.CompositeLit:
		var out uint32
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out |= ev.maskOf(f, elt)
		}
		return out
	}
	return 0
}

// resultMasks evaluates a call, one mask per result. Conversions,
// builtins, rank/wire sources, collectives, pool acquires, and
// package-local summaries are modeled; everything else is clean.
func (ev *evaluator) resultMasks(f factMap, call *ast.CallExpr) []uint32 {
	p := ev.m.p
	// Type conversion: conversions to sub-int-sized integers bound the
	// value and sanitize wire taint.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		m := ev.maskOf(f, call.Args[0])
		if isNarrowInt(tv.Type) {
			m &^= bitWire
		}
		return []uint32{m}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				// len of a wire-tainted slice is a trusted local fact, but
				// len of a rank-varying slice still varies per rank.
				return []uint32{ev.maskOf(f, call.Args[0]) & bitRank}
			case "min", "max":
				var m uint32
				for _, a := range call.Args {
					m |= ev.maskOf(f, a)
				}
				return []uint32{m &^ bitWire} // clamped: bounds established
			case "append":
				var m uint32
				for _, a := range call.Args {
					m |= ev.maskOf(f, a)
				}
				return []uint32{m}
			default:
				return []uint32{0}
			}
		}
	}
	if ev.m.isRankCall(call) {
		return []uint32{bitRank}
	}
	if masks, ok := wireDecodeMasks(p, call); ok {
		return masks
	}
	if name, ok := ev.m.collectiveName(call); ok {
		switch name {
		case "Exchange", "ExchangeV":
			// Received frames are attacker-controlled bytes.
			return []uint32{bitWire, 0}
		default: // AllreduceInt64, Barrier: results uniform across ranks
			return []uint32{0, 0}
		}
	}
	if idx, ok := ev.m.pools.acquireResult(ev.m, call); ok {
		out := make([]uint32, numResults(p, call))
		if idx < len(out) {
			out[idx] = bitPooled | bitLive
		}
		return out
	}
	if sum := ev.m.summaryFor(call); sum != nil {
		args := ev.argMasks(f, call)
		out := make([]uint32, len(sum.results))
		for i, rm := range sum.results {
			out[i] = substParams(rm, args)
		}
		return out
	}
	return make([]uint32, numResults(p, call))
}

// argMasks evaluates a call's argument masks, receiver first, padded to
// the summary parameter numbering.
func (ev *evaluator) argMasks(f factMap, call *ast.CallExpr) []uint32 {
	var out []uint32
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := ev.m.p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			out = append(out, ev.maskOf(f, sel.X))
		}
	}
	for _, a := range call.Args {
		out = append(out, ev.maskOf(f, a))
	}
	return out
}

// substParams replaces the param bits of a summary result mask with the
// call-site argument masks. Flow-local pool bits never cross a call.
func substParams(rm uint32, args []uint32) uint32 {
	out := rm &^ (paramBits | bitPooled | bitLive | bitReleased)
	for i := 0; i < maxParams && i < len(args); i++ {
		if rm&paramBit(i) != 0 {
			out |= args[i] &^ (bitPooled | bitLive | bitReleased)
		}
	}
	return out
}

// ---- transfer --------------------------------------------------------------

// transfer applies one CFG node's effect to the facts. It handles
// assignment shapes, range bindings, sanitizing comparisons, and release
// effects of calls; it is shared verbatim by the summary builder and all
// three flow analyzers.
func (ev *evaluator) transfer(f factMap, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		ev.assign(f, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				ev.declSpec(f, vs)
			}
		}
	case *ast.RangeStmt:
		m := ev.maskOf(f, n.X)
		if n.Key != nil {
			// The key is a bounded index (wire-clean), but the iteration
			// count of a rank-varying container varies per rank.
			ev.assignTo(f, n.Key, m&bitRank)
		}
		if n.Value != nil {
			ev.assignTo(f, n.Value, m&^(bitLive|bitReleased))
		}
	case *ast.SendStmt:
		ev.exprEffects(f, n.Value)
		if ev.m.pools.isPoolChan(ev.m.p, n.Chan) {
			// Sending back into the pool channel releases the value.
			if obj := ev.objectOf(n.Value); obj != nil && f[obj]&bitPooled != 0 {
				f[obj] = (f[obj] | bitReleased) &^ bitLive
			}
		} else if obj := ev.objectOf(n.Value); obj != nil {
			// Ownership leaves through the channel.
			f[obj] &^= bitLive
		}
	case *ast.ExprStmt:
		ev.exprEffects(f, n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			ev.exprEffects(f, r)
			if obj := ev.objectOf(r); obj != nil {
				f[obj] &^= bitLive // ownership transferred to the caller
			}
		}
	case *ast.GoStmt:
		ev.exprEffects(f, n.Call)
	case *ast.DeferStmt:
		// Effects modeled at Exit, where the CFG replays the call.
	case *ast.IncDecStmt:
		// x++ preserves x's mask.
	case ast.Expr:
		ev.exprEffects(f, n)
	}
}

// declSpec handles var declarations like assignments.
func (ev *evaluator) declSpec(f factMap, vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		ev.exprEffects(f, v)
	}
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			ms := ev.resultMasks(f, call)
			for i, name := range vs.Names {
				m := uint32(0)
				if i < len(ms) {
					m = ms[i]
				}
				ev.assignTo(f, name, m)
			}
			return
		}
	}
	for i, name := range vs.Names {
		m := uint32(0)
		if i < len(vs.Values) {
			m = ev.maskOf(f, vs.Values[i])
		}
		ev.assignTo(f, name, m)
	}
}

// assign applies an assignment statement, including tuple shapes and
// compound operators.
func (ev *evaluator) assign(f factMap, a *ast.AssignStmt) {
	for _, r := range a.Rhs {
		ev.exprEffects(f, r)
	}
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// Tuple: call, comma-ok, or channel receive.
		var ms []uint32
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			ms = ev.resultMasks(f, call)
		} else {
			m := ev.maskOf(f, a.Rhs[0])
			ms = []uint32{m, m & bitRank} // the ok/err leg carries no taint
		}
		for i, lhs := range a.Lhs {
			m := uint32(0)
			if i < len(ms) {
				m = ms[i]
			}
			ev.assignTo(f, lhs, m)
		}
		return
	}
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		m := ev.maskOf(f, a.Rhs[i])
		switch a.Tok {
		case token.ASSIGN, token.DEFINE:
			ev.assignTo(f, lhs, m)
		case token.AND_ASSIGN, token.REM_ASSIGN, token.AND_NOT_ASSIGN:
			// x &= mask / x %= n: bounding sanitizers.
			if obj := ev.objectOf(lhs); obj != nil {
				f[obj] = (f[obj] | m) &^ bitWire
			}
		default:
			// +=, -=, etc: accumulate.
			if obj := ev.objectOf(lhs); obj != nil {
				f[obj] |= m
			}
		}
	}
}

// assignTo stores mask into an assignment target. Identifier targets get
// a strong update (a fresh value wipes stale taint and release state);
// element/field targets weakly taint their base variable.
func (ev *evaluator) assignTo(f factMap, lhs ast.Expr, mask uint32) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := ev.objectOf(l); obj != nil {
			f[obj] = mask
		}
	case *ast.IndexExpr:
		if obj := ev.objectOf(l.X); obj != nil {
			f[obj] |= mask & (bitWire | bitRank)
		}
	case *ast.StarExpr:
		if obj := ev.objectOf(l.X); obj != nil {
			f[obj] |= mask & (bitWire | bitRank)
		}
	case *ast.SelectorExpr:
		// Storing a pooled value into a field transfers ownership out of
		// this frame; the escape analyzer decides if the destination is
		// legitimate. Handled in exprEffects via the RHS walk.
	}
}

// exprEffects applies the side effects buried inside an expression:
// release calls mark their argument released, sanitizing comparisons
// clear wire taint, passing a pooled value away unbinds ownership, and
// closures capture (and thereby untrack) what they mention.
func (ev *evaluator) exprEffects(f factMap, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Captured variables escape this frame's ownership.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := ev.m.p.Info.Uses[id]; obj != nil {
						if _, tracked := f[obj]; tracked {
							f[obj] &^= bitLive
						}
					}
				}
				return true
			})
			return false
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				// A comparison mentioning a tainted variable is the
				// bounds check: trust it and clear the taint from here on.
				for _, side := range []ast.Expr{n.X, n.Y} {
					if obj := sanitizeTarget(ev, side); obj != nil {
						f[obj] &^= bitWire
					}
				}
			}
		case *ast.CallExpr:
			ev.callEffects(f, n)
		}
		return true
	})
}

// callEffects applies a call's effects on its arguments: releases mark
// bitReleased, summary-known releases likewise, and any other call
// receiving a tracked pooled value takes ownership away.
func (ev *evaluator) callEffects(f factMap, call *ast.CallExpr) {
	p := ev.m.p
	if relIdx, ok := ev.m.pools.releaseArg(ev.m, call); ok {
		var target ast.Expr
		if relIdx < len(call.Args) {
			target = call.Args[relIdx]
		}
		if obj := ev.objectOf(target); obj != nil {
			f[obj] = (f[obj] | bitPooled | bitReleased) &^ bitLive
		}
		return
	}
	if sum := ev.m.summaryFor(call); sum != nil {
		args := ev.callArgExprs(call)
		for i, rel := range sum.releases {
			if !rel || i >= len(args) {
				continue
			}
			if obj := ev.objectOf(args[i]); obj != nil && f[obj]&bitPooled != 0 {
				f[obj] = (f[obj] | bitReleased) &^ bitLive
			}
		}
		// A summarized callee that takes a pooled value without releasing
		// it absorbs ownership (disposal helpers, encoders that stash the
		// buffer): stop tracking it rather than report a speculative leak.
		for _, a := range args {
			if obj := ev.objectOf(a); obj != nil && f[obj]&bitLive != 0 {
				f[obj] &^= bitLive
			}
		}
		return
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, no effects
	}
	// Unknown callee: passing a pooled value transfers ownership.
	for _, a := range call.Args {
		if obj := ev.objectOf(a); obj != nil && f[obj]&bitLive != 0 {
			f[obj] &^= bitLive
		}
	}
}

// callArgExprs returns a call's argument expressions aligned with the
// summary parameter numbering (receiver first).
func (ev *evaluator) callArgExprs(call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := ev.m.p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

// sanitizeTarget unwraps conversions, parens, and unary ops around a
// comparison operand to find the variable being bounds-checked:
// `uint(li) >= uint(n)` sanitizes li.
func sanitizeTarget(ev *evaluator, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if tv, ok := ev.m.p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			return ev.objectOf(x)
		default:
			return nil
		}
	}
}

// ---- small type helpers ----------------------------------------------------

// isNarrowInt reports whether t is an integer type of at most 16 bits:
// converting to it bounds the value tightly enough to count as a
// wire-taint sanitizer.
func isNarrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Uint8, types.Uint16:
		return true
	}
	return false
}

// numResults returns how many results a call produces.
func numResults(p *Package, call *ast.CallExpr) int {
	t := p.Info.TypeOf(call)
	if t == nil {
		return 1
	}
	if tuple, ok := t.(*types.Tuple); ok {
		return tuple.Len()
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.Invalid {
		return 1
	}
	return 1
}

// wireDecodeMasks recognizes the encoding/binary decode entry points and
// returns their result masks: the decoded values are wire-tainted.
func wireDecodeMasks(p *Package, call *ast.CallExpr) ([]uint32, bool) {
	sel := selectorCall(call)
	if sel == nil {
		return nil, false
	}
	// Package-level binary.Uvarint / binary.Varint / binary.ReadUvarint /
	// binary.ReadVarint.
	if p.pkgNamePath(sel.X) == "encoding/binary" {
		switch sel.Sel.Name {
		case "Uvarint", "Varint":
			// (value, bytesRead): both attacker-controlled.
			return []uint32{bitWire, bitWire}, true
		case "ReadUvarint", "ReadVarint":
			return []uint32{bitWire, 0}, true
		}
		return nil, false
	}
	// ByteOrder methods: binary.LittleEndian.Uint32(buf) etc.
	if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if named, ok := s.Recv().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "encoding/binary" {
				switch sel.Sel.Name {
				case "Uint16", "Uint32", "Uint64":
					return []uint32{bitWire}, true
				}
			}
		}
		// Interface receiver (binary.ByteOrder variable).
		if iface, ok := s.Recv().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
			if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
				switch sel.Sel.Name {
				case "Uint16", "Uint32", "Uint64":
					return []uint32{bitWire}, true
				}
			}
		}
	}
	return nil, false
}

// funcParams returns a function's parameter objects, receiver first.
func funcParams(p *Package, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil) // unnamed parameter still occupies a slot
				continue
			}
			for _, name := range field.Names {
				out = append(out, p.Info.Defs[name])
			}
		}
	}
	addField(decl.Recv)
	addField(decl.Type.Params)
	return out
}
