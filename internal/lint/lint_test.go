package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"parsssp/internal/lint"
)

func TestDirectiveValidation(t *testing.T) {
	// Three broken directives: missing everything, unknown analyzer,
	// missing justification. Each is reported by the "directive"
	// pseudo-analyzer so suppressions cannot silently rot.
	src := `package sssp

//parssspvet:allow
func A() {}

//parssspvet:allow notananalyzer -- reason
func B() {}

//parssspvet:allow wgmisuse
func C() {}
`
	got := runFixture(t, map[string]string{"internal/sssp/d.go": src}, lint.WGMisuse)
	wantFindings(t, got, []string{
		"d.go:3:1 directive",
		"d.go:6:1 directive",
		"d.go:9:1 directive",
	})
}

func TestDirectiveOnlySuppressesNamedAnalyzer(t *testing.T) {
	// A nodeterminism allow must not silence a wgmisuse finding on the
	// same line.
	src := `package pool

import "sync"

func Bad() {
	var wg sync.WaitGroup
	go func() {
		//parssspvet:allow nodeterminism -- wrong analyzer on purpose
		wg.Add(1)
		wg.Wait()
	}()
}
`
	got := runFixture(t, map[string]string{"internal/pool/pool.go": src}, lint.WGMisuse)
	wantFindings(t, got, []string{"pool.go:9:3 wgmisuse"})
}

func TestAnalyzersRegistry(t *testing.T) {
	want := []string{
		"nodeterminism", "atomicmix", "transporterr", "wgmisuse", "planepurity",
		"collectiveorder", "poolsafety", "wiretaint",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: got %q, want %q", i, a.Name, want[i])
		}
		if lint.ByName(want[i]) != a {
			t.Errorf("ByName(%q) does not round-trip", want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
	if lint.ByName("nope") != nil {
		t.Error("ByName should return nil for unknown analyzers")
	}
}

func TestLoadModulePatterns(t *testing.T) {
	files := map[string]string{
		"a.go":                             "package parsssp\n",
		"internal/one/one.go":              "package one\n",
		"internal/two/two.go":              "package two\n",
		"internal/two/sub/s.go":            "package sub\n",
		"internal/two/testdata/ignored.go": "package ignored\n",
	}
	pkgs := loadFixture(t, files) // loads ./...
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"parsssp", "parsssp/internal/one", "parsssp/internal/two", "parsssp/internal/two/sub"}
	if strings.Join(paths, " ") != strings.Join(want, " ") {
		t.Errorf("loaded %v, want %v", paths, want)
	}
}

// TestRepositoryIsClean runs the full suite over the real module — the
// same gate CI applies via cmd/parssspvet: findings are filtered through
// the committed baseline, anything beyond it fails, stale suppression
// directives fail, and stale baseline entries fail so the ratchet only
// moves one way.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Fatalf("package %s does not type-check: %v", p.Path, e)
		}
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	res := lint.Run(pkgs, lint.Analyzers(), lint.RunOptions{})
	baseline, err := lint.LoadBaseline(filepath.Join(mod.Root, "lint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	rel := func(filename string) string {
		if r, err := filepath.Rel(mod.Root, filename); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(filename)
	}
	fresh, stale := lint.ApplyBaseline(baseline, res.Findings, rel)
	for _, f := range fresh {
		t.Errorf("finding beyond baseline: %s", f)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (%s %s %q): now matches %d finding(s); ratchet lint.baseline.json down",
			e.Analyzer, e.File, e.Message, e.Count)
	}
	for _, u := range res.UnusedAllows {
		t.Errorf("stale suppression %s:%d:%d: //parssspvet:allow %s suppresses nothing; delete it",
			rel(u.Pos.Filename), u.Pos.Line, u.Pos.Column, u.Analyzer)
	}
}
