package lint

// planepurity enforces the immutability of the graph plane and of its
// versioned snapshots. The concurrent-query design (internal/sssp/
// plane.go, version.go) shares one rankGraph read-only across every
// pooled query slot with no synchronization, so the type system's
// inability to express "deeply const" is a real data race waiting to
// happen: any assignment to a rankGraph field — or to an element of one
// of its slices — from query code corrupts every in-flight query on the
// pool. The dynamic-update subsystem raises the stakes: a planeVersion
// is an immutable published snapshot whose whole point is that updates
// never mutate state under a pinned query, so its fields (including the
// refcount, which PlaneSet guards with its own mutex) may only be
// written along the PlaneSet apply path.
//
// The analyzer applies to any package that declares a struct type named
// rankGraph or planeVersion. Within it, every assignment or ++/-- whose
// left-hand side resolves (through the type-checker's selection records,
// so promoted fields of an embedding queryState are caught too) to a
// field of a guarded struct is flagged, unless it appears inside that
// struct's sanctioned writers:
//
//   - rankGraph: the constructors newRankGraph and newRankGraphPatched
//     (the derive-from-previous-version constructor of the incremental
//     update path), or a method on rankGraph itself (the constructors'
//     helpers, e.g. the histogram builder, carry that receiver).
//   - planeVersion: the constructor NewPlaneSet, a method on PlaneSet
//     (build, Apply, Acquire/Release and their locked helpers), or a
//     method on planeVersion itself.
//
// Repointing an engine at a new snapshot (r.rankGraph = newPlane,
// slot.pv = pv) is not a finding: those assign the *referring* struct's
// own pointer field, not a field of the guarded struct.
//
// Writes through an alias (s := p.shortEnd; s[0] = 1) are out of reach
// of this purely syntactic pass; keep plane slices out of local
// variables in query code.

import (
	"go/ast"
	"go/types"
)

// PlanePurity flags writes to rankGraph fields outside the plane's
// constructor, and writes to planeVersion fields outside the PlaneSet
// apply path.
var PlanePurity = &Analyzer{
	Name: "planepurity",
	Doc: "rankGraph planes and planeVersion snapshots are shared read-only across " +
		"concurrent query slots; only their constructors (newRankGraph, " +
		"newRankGraphPatched, NewPlaneSet), PlaneSet and their own methods may " +
		"write their fields",
	Run: runPlanePurity,
}

// planeRule guards one struct type: the set of its field objects, the
// functions allowed to write them, and the finding message (one %s, the
// field name).
type planeRule struct {
	fields  map[types.Object]bool
	allowed func(fd *ast.FuncDecl) bool
	message string
}

func runPlanePurity(p *Package) []Finding {
	var rules []*planeRule
	if fields := guardedFields(p, "rankGraph"); fields != nil {
		rules = append(rules, &planeRule{
			fields: fields,
			allowed: func(fd *ast.FuncDecl) bool {
				return receiverNamed(fd, "rankGraph") ||
					(fd.Recv == nil && (fd.Name.Name == "newRankGraph" ||
						fd.Name.Name == "newRankGraphPatched"))
			},
			message: "write to rankGraph.%s outside its constructors: the graph plane is shared read-only across concurrent query slots",
		})
	}
	if fields := guardedFields(p, "planeVersion"); fields != nil {
		rules = append(rules, &planeRule{
			fields: fields,
			allowed: func(fd *ast.FuncDecl) bool {
				return receiverNamed(fd, "PlaneSet") || receiverNamed(fd, "planeVersion") ||
					(fd.Recv == nil && fd.Name.Name == "NewPlaneSet")
			},
			message: "write to planeVersion.%s outside PlaneSet: a published snapshot is immutable; apply updates through PlaneSet",
		})
	}
	if len(rules) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var active []*planeRule
			for _, r := range rules {
				if !r.allowed(fd) {
					active = append(active, r)
				}
			}
			if len(active) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						out = appendPlaneWrite(p, active, lhs, out)
					}
				case *ast.IncDecStmt:
					out = appendPlaneWrite(p, active, s.X, out)
				case *ast.RangeStmt:
					out = appendPlaneWrite(p, active, s.Key, out)
					out = appendPlaneWrite(p, active, s.Value, out)
				}
				return true
			})
		}
	}
	return out
}

// guardedFields returns the set of field objects of the package's struct
// type with the given name, or nil if the package declares no such type.
func guardedFields(p *Package, name string) map[types.Object]bool {
	if p.Types == nil {
		return nil
	}
	tn, ok := p.Types.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fields := make(map[types.Object]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	return fields
}

// receiverNamed reports whether fd is a method on the named type
// (pointer or value receiver).
func receiverNamed(fd *ast.FuncDecl, name string) bool {
	if fd.Recv == nil {
		return false
	}
	for _, f := range fd.Recv.List {
		t := f.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// appendPlaneWrite appends a finding if lhs is (an element of) a guarded
// struct's field under one of the active rules. Index, dereference and
// paren wrappers are stripped so that p.shortEnd[i] = x and *p.opts = o
// are both caught at the base selector.
func appendPlaneWrite(p *Package, active []*planeRule, lhs ast.Expr, out []Finding) []Finding {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			sel := p.Info.Selections[e]
			if sel == nil {
				return out
			}
			for _, r := range active {
				if r.fields[sel.Obj()] {
					return append(out, p.finding("planepurity", e.Pos(), r.message, sel.Obj().Name()))
				}
			}
			return out
		default:
			return out
		}
	}
}
