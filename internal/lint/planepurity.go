package lint

// planepurity enforces the immutability of the graph plane. The
// concurrent-query design (internal/sssp/plane.go) shares one rankGraph
// read-only across every pooled query slot with no synchronization, so
// the type system's inability to express "deeply const" is a real data
// race waiting to happen: any assignment to a rankGraph field — or to an
// element of one of its slices — from query code corrupts every
// in-flight query on the pool.
//
// The analyzer applies to any package that declares a struct type named
// rankGraph. Within it, every assignment or ++/-- whose left-hand side
// resolves (through the type-checker's selection records, so promoted
// fields of an embedding queryState are caught too) to a rankGraph field
// is flagged, unless it appears inside the constructor newRankGraph or a
// method on rankGraph itself (the constructor's helpers, e.g. the
// histogram builder, carry that receiver).
//
// Writes through an alias (s := p.shortEnd; s[0] = 1) are out of reach
// of this purely syntactic pass; keep plane slices out of local
// variables in query code.

import (
	"go/ast"
	"go/types"
)

// PlanePurity flags writes to rankGraph fields outside the plane's
// constructor.
var PlanePurity = &Analyzer{
	Name: "planepurity",
	Doc: "rankGraph is shared read-only across concurrent query slots; " +
		"only newRankGraph and rankGraph's own methods may write its fields",
	Run: runPlanePurity,
}

func runPlanePurity(p *Package) []Finding {
	fields := rankGraphFields(p)
	if fields == nil {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || planeConstructor(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						out = appendPlaneWrite(p, fields, lhs, out)
					}
				case *ast.IncDecStmt:
					out = appendPlaneWrite(p, fields, s.X, out)
				case *ast.RangeStmt:
					out = appendPlaneWrite(p, fields, s.Key, out)
					out = appendPlaneWrite(p, fields, s.Value, out)
				}
				return true
			})
		}
	}
	return out
}

// rankGraphFields returns the set of field objects of the package's
// rankGraph struct type, or nil if the package declares no such type.
func rankGraphFields(p *Package) map[types.Object]bool {
	if p.Types == nil {
		return nil
	}
	tn, ok := p.Types.Scope().Lookup("rankGraph").(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fields := make(map[types.Object]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	return fields
}

// planeConstructor reports whether fd is allowed to write plane fields:
// the constructor itself, or a method on rankGraph (its helpers).
func planeConstructor(fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return fd.Name.Name == "newRankGraph"
	}
	for _, f := range fd.Recv.List {
		t := f.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == "rankGraph" {
			return true
		}
	}
	return false
}

// appendPlaneWrite appends a finding if lhs is (an element of) a
// rankGraph field. Index, dereference and paren wrappers are stripped so
// that p.shortEnd[i] = x and *p.opts = o are both caught at the base
// selector.
func appendPlaneWrite(p *Package, fields map[types.Object]bool, lhs ast.Expr, out []Finding) []Finding {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			sel := p.Info.Selections[e]
			if sel == nil || !fields[sel.Obj()] {
				return out
			}
			return append(out, p.finding("planepurity", e.Pos(),
				"write to rankGraph.%s outside newRankGraph: the graph plane is shared read-only across concurrent query slots",
				sel.Obj().Name()))
		default:
			return out
		}
	}
}
