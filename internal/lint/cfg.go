package lint

// A lightweight control-flow graph over go/ast function bodies: the
// substrate of the flow-sensitive analyzers (collectiveorder,
// poolsafety, wiretaint). Each Block is a maximal straight-line sequence
// of statement/expression nodes in execution order; edges follow Go's
// structured control flow (if/for/range/switch/select, break/continue/
// goto/fallthrough, return). The graph is deliberately approximate where
// precision buys nothing for our analyses: panics are not modeled, and
// deferred calls are appended to the single Exit block in reverse
// declaration order, which over-approximates "the defers run on every
// exit path" well enough for lifetime checks like defer pool.Put(b).
//
// Besides the graph itself the file implements postdominators (iterative
// intersection over the reverse graph) and Ferrante-style control
// dependence: block X is control-dependent on branch block B when X
// postdominates one of B's successors but not B itself. The closure of
// that relation is what collectiveorder uses to decide whether a
// collective call can be skipped — or repeated a different number of
// times — depending on a branch condition.

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of nodes with its outgoing edges.
type Block struct {
	// ID indexes the block in CFG.Blocks.
	ID int
	// Nodes are the statements and condition expressions executed in this
	// block, in order. Condition expressions of if/for statements appear
	// as the last node of their branch block.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Branch is the statement that makes this block a multi-way branch
	// (IfStmt, ForStmt, RangeStmt, SwitchStmt, TypeSwitchStmt,
	// SelectStmt), or nil for straight-line blocks.
	Branch ast.Stmt
	// Cond is the branch condition when Branch has an expression
	// condition (if, for, switch tag); nil for range/select and
	// condition-less for/switch.
	Cond ast.Expr
}

func (b *Block) add(n ast.Node) {
	if n != nil {
		b.Nodes = append(b.Nodes, n)
	}
}

// A CFG is one function body's control-flow graph.
type CFG struct {
	Entry, Exit *Block
	Blocks      []*Block
	// Defers are the deferred calls, in declaration order. Their call
	// expressions are also appended (reversed) to Exit.Nodes.
	Defers []*ast.CallExpr
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	// Deferred calls run at every exit; model them inside Exit, last
	// declared first.
	for i := len(b.cfg.Defers) - 1; i >= 0; i-- {
		b.cfg.Exit.add(b.cfg.Defers[i])
	}
	return b.cfg
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breakables/continuables are the open break/continue target stacks;
	// label is "" for unlabeled statements.
	breakables   []labeledTarget
	continuables []labeledTarget
	pendingLabel string

	labels map[string]*Block
	gotos  []pendingGoto

	// fallTarget is the next case body during switch construction.
	fallTarget *Block
}

type labeledTarget struct {
	label  string
	target *Block
}

type pendingGoto struct {
	label string
	from  *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{ID: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// terminate ends the current block without a fallthrough successor; the
// fresh dangling block absorbs any (unreachable) code that follows.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label of a labeled loop/switch.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushTargets(label string, brk, cont *Block) {
	b.breakables = append(b.breakables, labeledTarget{label, brk})
	if cont != nil {
		b.continuables = append(b.continuables, labeledTarget{label, cont})
	}
}

func (b *cfgBuilder) popTargets(cont bool) {
	b.breakables = b.breakables[:len(b.breakables)-1]
	if cont {
		b.continuables = b.continuables[:len(b.continuables)-1]
	}
}

func findTarget(stack []labeledTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].target
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.add(s.Init)
		}
		b.cur.add(s.Cond)
		b.cur.Branch, b.cur.Cond = s, s.Cond
		condBlk := b.cur
		join := b.newBlock()

		then := b.newBlock()
		b.edge(condBlk, then)
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, join)

		if s.Else != nil {
			els := b.newBlock()
			b.edge(condBlk, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.add(s.Post)
			b.edge(post, head)
		} else {
			post = head
		}
		body := b.newBlock()
		if s.Cond != nil {
			head.add(s.Cond)
			head.Branch, head.Cond = s, s.Cond
			b.edge(head, body)
			b.edge(head, after)
		} else {
			b.edge(head, body) // for{}: exits only via break
		}
		b.pushTargets(label, after, post)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		b.popTargets(true)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.cur.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node itself stands for the per-iteration key/value
		// binding; transfer functions interpret it.
		head.add(s)
		head.Branch = s
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushTargets(label, after, head)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.popTargets(true)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.add(s.Init)
		}
		if s.Tag != nil {
			b.cur.add(s.Tag)
		}
		b.cur.Branch, b.cur.Cond = s, s.Tag
		b.switchClauses(label, b.cur, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.add(s.Init)
		}
		b.cur.add(s.Assign)
		b.cur.Branch = s
		b.switchClauses(label, b.cur, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.cur.Branch = s
		b.switchClauses(label, b.cur, s.Body.List, nil)

	case *ast.ReturnStmt:
		b.cur.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminate()

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breakables, label); t != nil {
				b.edge(b.cur, t)
			}
			b.terminate()
		case token.CONTINUE:
			if t := findTarget(b.continuables, label); t != nil {
				b.edge(b.cur, t)
			}
			b.terminate()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{label, b.cur})
			b.terminate()
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.edge(b.cur, b.fallTarget)
			}
			b.terminate()
		}

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.DeferStmt:
		b.cur.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s.Call)

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, ExprStmt, GoStmt, IncDecStmt, SendStmt.
		b.cur.add(s)
	}
}

// switchClauses wires the per-clause bodies of a switch/type-switch/
// select hanging off branch block cond. Every clause body joins a common
// successor; a missing default adds a direct cond→join edge (the
// statement can execute no clause at all). Fallthrough edges jump to the
// following clause's body block.
func (b *cfgBuilder) switchClauses(label string, cond *Block, clauses []ast.Stmt, _ *Block) {
	join := b.newBlock()
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.edge(cond, bodies[i])
	}
	b.pushTargets(label, join, nil)
	for i, c := range clauses {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				bodies[i].add(e)
			}
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				bodies[i].add(c.Comm)
			} else {
				hasDefault = true
			}
			list = c.Body
		}
		if i+1 < len(bodies) {
			b.fallTarget = bodies[i+1]
		} else {
			b.fallTarget = nil
		}
		b.cur = bodies[i]
		b.stmts(list)
		b.edge(b.cur, join)
	}
	b.fallTarget = nil
	b.popTargets(false)
	if !hasDefault {
		b.edge(cond, join)
	}
	b.cur = join
}

// ---- postdominators and control dependence ---------------------------------

// bitset is a fixed-size set of block IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }
func (s bitset) set(i int)      { s[i/64] |= 1 << (i % 64) }

func (s bitset) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// intersectWith ands other into s, reporting whether s changed.
func (s bitset) intersectWith(other bitset) bool {
	changed := false
	for i := range s {
		n := s[i] & other[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// postdominators returns, per block ID, the set of blocks that
// postdominate it (reflexive: every block postdominates itself). Blocks
// that cannot reach Exit (dangling unreachable blocks, bodies of
// exit-less infinite loops) keep the full set; control-dependence
// queries never involve them in a way that misleads, because a
// collective inside an exit-less loop has no branch deciding its
// execution.
func (c *CFG) postdominators() []bitset {
	n := len(c.Blocks)
	pdom := make([]bitset, n)
	preds := make([][]*Block, n)
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s.ID] = append(preds[s.ID], b)
		}
	}
	for i := range pdom {
		pdom[i] = newBitset(n)
		if i == c.Exit.ID {
			pdom[i].set(i)
		} else {
			pdom[i].fill()
		}
	}
	changed := true
	for changed {
		changed = false
		// Reverse order approximates reverse-postorder on the reverse
		// graph; correctness does not depend on it, only iteration count.
		for i := n - 1; i >= 0; i-- {
			b := c.Blocks[i]
			if b == c.Exit || len(b.Succs) == 0 {
				continue
			}
			next := newBitset(n)
			next.fill()
			for _, s := range b.Succs {
				next.intersectWith(pdom[s.ID])
			}
			next.set(i)
			if pdom[i].intersectWith(next) {
				changed = true
			}
			// intersectWith only shrinks; adding the self bit back is safe
			// because it was set in next.
			pdom[i].set(i)
		}
	}
	return pdom
}

// controlDeps returns the branch blocks x is (transitively)
// control-dependent on: the branches that decide whether — or how many
// times — x executes. Classical Ferrante et al. dependence (x
// postdominates a successor of b but not b itself), closed over the
// governing branches' own dependences so a collective nested two
// branches deep reports both conditions.
func (c *CFG) controlDeps(x *Block, pdom []bitset) []*Block {
	var out []*Block
	seen := make(map[*Block]bool)
	work := []*Block{x}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, b := range c.Blocks {
			if len(b.Succs) < 2 || b.Branch == nil || seen[b] {
				continue
			}
			if pdom[b.ID].has(cur.ID) && cur != b {
				continue // cur postdominates b: b does not decide cur
			}
			dependent := false
			for _, s := range b.Succs {
				if s == cur || pdom[s.ID].has(cur.ID) {
					dependent = true
					break
				}
			}
			if dependent {
				seen[b] = true
				out = append(out, b)
				work = append(work, b)
			}
		}
	}
	return out
}
