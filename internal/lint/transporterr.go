package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// commPkgPath is the import path of the comm layer whose Transport
// interface defines the collectives every error must propagate from.
const commPkgPath = "parsssp/internal/comm"

// TransportErr flags discarded errors from the comm layer. Two rules:
//
//  1. Everywhere in the module, a call to a method of comm.Transport
//     (Exchange, AllreduceInt64, Barrier, Close) or of the optional
//     comm.GatherExchanger extension (ExchangeV) — on any type
//     implementing the respective interface — must not drop its error:
//     not as a bare statement, not behind go/defer, and not assigned to
//     the blank identifier. A swallowed transport error desynchronizes
//     the bulk-synchronous collectives — the other ranks keep waiting at
//     a barrier this rank will never reach.
//
//  2. Inside the comm layer itself (parsssp/internal/comm/...), every
//     dropped error-returning call is flagged, whatever the callee: the
//     transports are the module's only I/O path, and a silently ignored
//     connection write/close failure surfaces later as a hung collective
//     with no diagnostic.
const transportErrName = "transporterr"

var TransportErr = &Analyzer{
	Name: transportErrName,
	Doc: "flag dropped or blank-assigned errors from comm.Transport " +
		"methods and from comm-layer I/O paths",
	Run: runTransportErr,
}

func runTransportErr(p *Package) []Finding {
	ifaces := transportInterfaces(p)
	strict := p.Path == commPkgPath || strings.HasPrefix(p.Path, commPkgPath+"/")
	if len(ifaces) == 0 && !strict {
		return nil
	}
	var out []Finding
	report := func(call *ast.CallExpr, how string) {
		callee := types.ExprString(call.Fun)
		for _, iface := range ifaces {
			if isTransportMethodCall(p, call, iface) {
				out = append(out, p.finding(transportErrName, call.Pos(),
					"error from transport collective %s %s; a dropped transport error desynchronizes the ranks — propagate it",
					callee, how))
				return
			}
		}
		if strict {
			out = append(out, p.finding(transportErrName, call.Pos(),
				"comm-layer call %s %s; connection and I/O failures must propagate",
				callee, how))
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && hasErrorResult(p, call) {
					report(call, "discarded")
				}
			case *ast.GoStmt:
				if hasErrorResult(p, n.Call) {
					report(n.Call, "discarded by go statement")
				}
			case *ast.DeferStmt:
				if hasErrorResult(p, n.Call) {
					report(n.Call, "discarded by defer")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if len(blankErrorResults(p, call, n.Lhs)) > 0 {
					report(call, "assigned to the blank identifier")
				}
			}
			return true
		})
	}
	return out
}

// transportInterfaces resolves the comm-layer collective interfaces
// (Transport and the optional GatherExchanger extension) for this
// package: locally when analyzing the comm package itself, otherwise
// through the package's transitive imports. Empty when the package
// cannot reach the comm layer at all (rule 1 is then vacuous).
func transportInterfaces(p *Package) []*types.Interface {
	var commPkg *types.Package
	if p.Path == commPkgPath {
		commPkg = p.Types
	} else {
		commPkg = findImport(p.Types, commPkgPath, make(map[*types.Package]bool))
	}
	if commPkg == nil {
		return nil
	}
	var ifaces []*types.Interface
	for _, name := range []string{"Transport", "GatherExchanger"} {
		obj := commPkg.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			ifaces = append(ifaces, iface)
		}
	}
	return ifaces
}

// findImport searches the transitive import graph for a package path.
func findImport(from *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if from == nil || seen[from] {
		return nil
	}
	seen[from] = true
	for _, imp := range from.Imports() {
		if imp.Path() == path {
			return imp
		}
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// isTransportMethodCall reports whether call invokes one of iface's
// methods on a receiver implementing iface.
func isTransportMethodCall(p *Package, call *ast.CallExpr, iface *types.Interface) bool {
	sel := selectorCall(call)
	if sel == nil {
		return false
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	name := sel.Sel.Name
	ifaceHas := false
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			ifaceHas = true
			break
		}
	}
	if !ifaceHas {
		return false
	}
	recv := selection.Recv()
	return types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface)
}

// hasErrorResult reports whether a call has at least one error-typed
// result.
func hasErrorResult(p *Package, call *ast.CallExpr) bool {
	return len(errorResultIndexes(p, call)) > 0
}

// errorResultIndexes returns the result positions of call that have type
// error.
func errorResultIndexes(p *Package, call *ast.CallExpr) []int {
	t := p.Info.TypeOf(call)
	if t == nil {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		var idx []int
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				idx = append(idx, i)
			}
		}
		return idx
	}
	if types.Identical(t, errType) {
		return []int{0}
	}
	return nil
}

// blankErrorResults returns the error result positions of call that the
// assignment discards into the blank identifier.
func blankErrorResults(p *Package, call *ast.CallExpr, lhs []ast.Expr) []int {
	var blanks []int
	for _, i := range errorResultIndexes(p, call) {
		if i >= len(lhs) {
			continue
		}
		if id, ok := lhs[i].(*ast.Ident); ok && id.Name == "_" {
			blanks = append(blanks, i)
		}
	}
	return blanks
}
