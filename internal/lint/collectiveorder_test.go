package lint_test

import (
	"testing"

	"parsssp/internal/lint"
)

// The fixtures reuse fixtureComm (transporterr_test.go): a minimal comm
// package at the real import path, so the type-based collective
// detection sees the same interfaces as the repository.

func TestCollectiveOrderDivergenceKinds(t *testing.T) {
	src := `package sssp

import (
	"errors"

	"parsssp/internal/comm"
)

var errBad = errors.New("bad")

// Kind 1: collective on one arm of a rank-varying branch.
func branchDiverge(t comm.Transport) error {
	if t.Rank() == 0 {
		if err := t.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// Kind 2: a rank-varying arm exits early, skipping the collective after
// the join on some ranks.
func earlyExit(t comm.Transport) error {
	if t.Rank() == 0 {
		return nil
	}
	return t.Barrier()
}

// Kind 3: rank-varying loop bound — ranks disagree on the repetition
// count. Both the counted loop and the range over per-rank data count.
func loopDiverge(t comm.Transport) error {
	for i := 0; i < t.Rank(); i++ {
		if err := t.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

func rangeDiverge(t comm.Transport, perRank [][]byte) error {
	local := perRank[t.Rank()]
	for range local {
		if err := t.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// Kind 4: collective inside a case of a rank-varying switch.
func switchDiverge(t comm.Transport) error {
	switch t.Rank() {
	case 0:
		return t.Barrier()
	default:
		return nil
	}
}

// Kind 5: collective inside a select case — which case runs is
// timing-dependent and differs across ranks.
func selectDiverge(t comm.Transport, ch chan int) error {
	select {
	case <-ch:
		return t.Barrier()
	default:
		return nil
	}
}

// Divergence through a summarized local callee is still divergence.
func helperBarrier(t comm.Transport) error { return t.Barrier() }

func indirectDiverge(t comm.Transport) error {
	if t.Rank() == 0 {
		return helperBarrier(t)
	}
	return nil
}
`
	got := runFixture(t, map[string]string{
		"internal/comm/comm.go": fixtureComm,
		"internal/sssp/e.go":    src,
	}, lint.CollectiveOrder)
	wantFindings(t, got, []string{
		"e.go:14:13 collectiveorder", // branchDiverge
		"e.go:27:9 collectiveorder",  // earlyExit
		"e.go:34:13 collectiveorder", // loopDiverge
		"e.go:44:13 collectiveorder", // rangeDiverge
		"e.go:55:10 collectiveorder", // switchDiverge
		"e.go:66:10 collectiveorder", // selectDiverge
		"e.go:77:10 collectiveorder", // indirectDiverge via helperBarrier
	})
}

func TestCollectiveOrderUniformAndFailFastAreClean(t *testing.T) {
	src := `package sssp

import (
	"errors"

	"parsssp/internal/comm"
)

var errCorrupt = errors.New("corrupt")

// Uniform loop bound, uniform conditions, error-only early exits: the
// canonical superstep shape must stay clean.
func uniformSupersteps(t comm.Transport, rounds int) error {
	for i := 0; i < rounds; i++ {
		in, err := t.Exchange(nil)
		if err != nil {
			return err
		}
		_ = in
	}
	return t.Barrier()
}

// A rank-varying branch whose only exits return non-nil errors is the
// fail-fast shape: every rank aborts the mesh together (comm.Abort), so
// the collective after the join is exempt.
func failFast(t comm.Transport, bad bool) error {
	if t.Rank() > 0 && bad {
		return errCorrupt
	}
	return t.Barrier()
}

// Allreduce results are uniform by construction: branching on them and
// then performing a collective is the paper's main loop.
func allreduceDriven(t comm.Transport) error {
	for {
		k, err := t.AllreduceInt64([]int64{1}, comm.ReduceOp(0))
		if err != nil {
			return err
		}
		if k[0] == 0 {
			break
		}
		if err := t.Barrier(); err != nil {
			return err
		}
	}
	return t.Close()
}

// The admit decision arrives as a parameter (the ssspd rank-0-admits
// pattern): parameters are uniform under context-insensitive analysis,
// and the collective itself runs unconditionally on every rank.
func rank0Admits(t comm.Transport, rank0 bool, work chan int) error {
	var contrib int64
	if rank0 {
		contrib = int64(<-work)
	}
	_, err := t.AllreduceInt64([]int64{contrib}, comm.ReduceOp(0))
	return err
}
`
	got := runFixture(t, map[string]string{
		"internal/comm/comm.go": fixtureComm,
		"internal/sssp/u.go":    src,
	}, lint.CollectiveOrder)
	wantFindings(t, got, nil)
}

// TestCollectiveOrderPolicyDispatch pins the stepping-policy seam's SPMD
// contract: dispatching between per-policy drivers with different
// collective sequences is clean when the policy is uniform (an options
// field every rank holds identically — the engine's run() switch), and
// flagged when the selection depends on the rank (exactly why ssspd has
// no per-rank policy autodetection).
func TestCollectiveOrderPolicyDispatch(t *testing.T) {
	src := `package sssp

import (
	"parsssp/internal/comm"
)

// Each driver has its own collective schedule, mirroring the real
// engine: Δ's settle loop, Radius's threshold loop with an inner
// fixpoint, ρ's extract-exchange epochs. All are allreduce-driven.
func deltaDriver(t comm.Transport) error {
	for {
		k, err := t.AllreduceInt64([]int64{1}, comm.ReduceOp(0))
		if err != nil {
			return err
		}
		if k[0] == 0 {
			break
		}
		if _, err := t.Exchange(nil); err != nil {
			return err
		}
	}
	return nil
}

func radiusDriver(t comm.Transport) error {
	for {
		m, err := t.AllreduceInt64([]int64{1}, comm.ReduceOp(0))
		if err != nil {
			return err
		}
		if m[0] == 0 {
			break
		}
		for {
			act, err := t.AllreduceInt64([]int64{1}, comm.ReduceOp(1))
			if err != nil {
				return err
			}
			if act[0] == 0 {
				break
			}
			if _, err := t.Exchange(nil); err != nil {
				return err
			}
		}
	}
	return nil
}

func rhoDriver(t comm.Transport) error {
	for {
		k, err := t.AllreduceInt64([]int64{1}, comm.ReduceOp(0))
		if err != nil {
			return err
		}
		if k[0] == 0 {
			break
		}
		if _, err := t.Exchange(nil); err != nil {
			return err
		}
	}
	return nil
}

// The engine's run() shape: the policy is an options field, identical on
// every rank, so the dispatch is uniform even though the drivers'
// collective schedules differ.
func uniformPolicyDispatch(t comm.Transport, policy int) error {
	switch policy {
	case 1:
		return radiusDriver(t)
	case 2:
		return rhoDriver(t)
	default:
		return deltaDriver(t)
	}
}

// A rank-derived policy diverges the schedule: flagged.
func rankDerivedPolicy(t comm.Transport) error {
	if t.Rank()%2 == 1 {
		return radiusDriver(t)
	}
	return deltaDriver(t)
}
`
	got := runFixture(t, map[string]string{
		"internal/comm/comm.go": fixtureComm,
		"internal/sssp/p.go":    src,
	}, lint.CollectiveOrder)
	wantFindings(t, got, []string{
		"p.go:84:10 collectiveorder", // rankDerivedPolicy via radiusDriver
	})
}
