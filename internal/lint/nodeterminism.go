package lint

import (
	"go/ast"
	"go/types"
)

// deterministicCore lists the packages whose output must be a pure
// function of their inputs: the SSSP engine, the in-process comm layer,
// the graph generator and the seeded RNG. Reproducibility of memtransport
// runs — and of the paper-metric counters (relaxations, messages,
// volume) derived from them — rests on these packages never observing
// wall-clock time, global randomness, or map iteration order.
//
// tcptransport is deliberately absent: it speaks to a real network, and
// its dial/retry loop legitimately needs wall-clock deadlines. Its
// determinism obligations are covered by the Transport contract, not by
// this analyzer.
var deterministicCore = map[string]bool{
	"parsssp/internal/sssp":              true,
	"parsssp/internal/comm":              true,
	"parsssp/internal/comm/memtransport": true,
	"parsssp/internal/rmat":              true,
	"parsssp/internal/rng":               true,
}

// wallClockFuncs are the time package entry points that read the wall
// clock. time.Sleep is absent on purpose: it delays execution but never
// flows into algorithm output.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// seededConstructors are the math/rand identifiers that build explicitly
// seeded generator values rather than touching the package-global source.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// NoDeterminism forbids nondeterminism sources in the deterministic core
// packages: references to math/rand's global-source top-level functions
// (use the seeded generators in parsssp/internal/rng), wall-clock reads
// via time.Now/Since/Until (route observability timing through a single
// annotated indirection, see internal/sssp/clock.go), and ranging over
// maps (iteration order varies run to run; sort the keys, or annotate the
// loop when its result is provably order-insensitive, e.g. a pure
// min/max/sum reduction).
const noDeterminismName = "nodeterminism"

var NoDeterminism = &Analyzer{
	Name: noDeterminismName,
	Doc: "forbid wall-clock reads, math/rand globals and map-order-dependent " +
		"iteration in the deterministic core packages",
	Run: runNoDeterminism,
}

func runNoDeterminism(p *Package) []Finding {
	if !deterministicCore[p.Path] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				switch path := p.pkgNamePath(n.X); path {
				case "time":
					if wallClockFuncs[n.Sel.Name] {
						out = append(out, p.finding(noDeterminismName, n.Pos(),
							"wall-clock read time.%s in deterministic core package %s; timing must go through the package's annotated clock indirection",
							n.Sel.Name, p.Path))
					}
				case "math/rand", "math/rand/v2":
					if isGlobalRandFunc(p, n, path) {
						out = append(out, p.finding(noDeterminismName, n.Pos(),
							"global %s.%s in deterministic core package %s; use the seeded generators in parsssp/internal/rng",
							path, n.Sel.Name, p.Path))
					}
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						out = append(out, p.finding(noDeterminismName, n.For,
							"map iteration order is nondeterministic; sort the keys first, or annotate with //parssspvet:allow nodeterminism if the loop is order-insensitive"))
					}
				}
			}
			return true
		})
	}
	return out
}

// isGlobalRandFunc reports whether sel references a package-level
// function of math/rand (or v2) that draws from shared generator state.
// Explicitly seeded constructors (rand.New, rand.NewSource, ...) and
// non-function members are allowed.
func isGlobalRandFunc(p *Package, sel *ast.SelectorExpr, path string) bool {
	obj := p.Info.Uses[sel.Sel]
	if _, ok := obj.(*types.Func); !ok {
		return false
	}
	if path == "math/rand" && seededConstructors[sel.Sel.Name] {
		return false
	}
	// math/rand/v2 has no global Seed and its constructors all start with
	// "New" (New, NewPCG, NewChaCha8, NewZipf).
	if path == "math/rand/v2" && len(sel.Sel.Name) >= 3 && sel.Sel.Name[:3] == "New" {
		return false
	}
	return true
}
