package lint_test

import (
	"go/token"
	"path/filepath"
	"testing"

	"parsssp/internal/lint"
)

func baselineFinding(file, msg string, line int) lint.Finding {
	return lint.Finding{
		Analyzer: "wiretaint",
		Pos:      token.Position{Filename: "/mod/" + file, Line: line, Column: 1},
		Message:  msg,
	}
}

func baselineRel(filename string) string {
	r, _ := filepath.Rel("/mod", filename)
	return filepath.ToSlash(r)
}

func TestBaselineRatchet(t *testing.T) {
	findings := []lint.Finding{
		baselineFinding("a.go", "index", 10),
		baselineFinding("a.go", "index", 20),
		baselineFinding("b.go", "bound", 5),
	}
	entries := lint.BaselineFromFindings(findings, baselineRel)
	if len(entries) != 2 {
		t.Fatalf("got %d entry groups, want 2 (a.go index ×2, b.go bound ×1)", len(entries))
	}
	if entries[0].Count != 2 || entries[0].File != "a.go" {
		t.Errorf("first group = %+v, want a.go with count 2", entries[0])
	}

	// The exact findings are fully covered: nothing fresh, nothing stale.
	fresh, stale := lint.ApplyBaseline(entries, findings, baselineRel)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round-trip: fresh=%d stale=%d, want 0/0", len(fresh), len(stale))
	}

	// Line numbers are deliberately not part of the key: shifted code
	// still matches.
	shifted := []lint.Finding{
		baselineFinding("a.go", "index", 99),
		baselineFinding("a.go", "index", 100),
		baselineFinding("b.go", "bound", 1),
	}
	fresh, stale = lint.ApplyBaseline(entries, shifted, baselineRel)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("shifted lines: fresh=%d stale=%d, want 0/0", len(fresh), len(stale))
	}

	// A third a.go finding exceeds the recorded count: fresh, fails.
	grown := append(append([]lint.Finding{}, findings...), baselineFinding("a.go", "index", 30))
	fresh, _ = lint.ApplyBaseline(entries, grown, baselineRel)
	if len(fresh) != 1 {
		t.Errorf("grown: fresh=%d, want 1", len(fresh))
	}

	// Fixing one a.go finding makes its group stale with the ratcheted
	// count, so the committed file must shrink to stay green.
	shrunk := []lint.Finding{findings[0], findings[2]}
	fresh, stale = lint.ApplyBaseline(entries, shrunk, baselineRel)
	if len(fresh) != 0 {
		t.Errorf("shrunk: fresh=%d, want 0", len(fresh))
	}
	if len(stale) != 1 || stale[0].File != "a.go" || stale[0].Count != 1 {
		t.Errorf("shrunk: stale=%+v, want one a.go entry ratcheted to count 1", stale)
	}
}

func TestBaselineSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	// A missing file is an empty baseline, not an error.
	entries, err := lint.LoadBaseline(path)
	if err != nil || entries != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", entries, err)
	}
	want := []lint.BaselineEntry{
		{Analyzer: "poolsafety", File: "z.go", Message: "leak", Count: 2, Reason: "queued fix"},
		{Analyzer: "wiretaint", File: "a.go", Message: "index", Count: 1},
	}
	if err := lint.SaveBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Analyzer != "poolsafety" || got[1].Analyzer != "wiretaint" {
		t.Errorf("round-trip: got %+v", got)
	}
}
