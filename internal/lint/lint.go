// Package lint is parsssp's domain-specific static-analysis framework:
// the backing library of the parssspvet command. It exists because the
// paper's algorithms are correct only under invariants the Go compiler
// cannot check — the deterministic core must stay free of wall-clock and
// global-randomness reads so memtransport runs (and the paper-metric
// counters: relaxations, messages, volume) are reproducible, relaxation
// state shared between worker goroutines must be accessed consistently
// through sync/atomic, transport errors must propagate, and WaitGroups
// must follow the Add-before-go / defer-Done discipline that keeps every
// superstep reaching its barrier.
//
// The framework is stdlib-only (go/parser + go/ast + go/types); the
// module deliberately has no dependencies, so nothing here may import
// golang.org/x/tools. Packages are loaded by the module-aware loader in
// load.go and handed to Analyzers, which walk the typed syntax trees and
// return Findings.
//
// A finding can be suppressed where the flagged construct is provably
// harmless with a justification directive on the same line or the line
// directly above:
//
//	//parssspvet:allow <analyzer> -- <reason>
//
// The reason is mandatory: an unexplained suppression is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over a single loaded package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// //parssspvet:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects pkg and returns its findings. Suppression directives
	// are applied by RunAnalyzers, not by Run.
	Run func(pkg *Package) []Finding
}

// A Finding is one rule violation at one source position.
type Finding struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos locates the offending construct.
	Pos token.Position
	// Message explains the violation and how to fix it.
	Message string
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		AtomicMix,
		TransportErr,
		WGMisuse,
		PlanePurity,
		CollectiveOrder,
		PoolSafety,
		WireTaint,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies every analyzer to every package, filters findings
// through the //parssspvet:allow directives, and returns the survivors
// sorted by position. Malformed or reason-less directives are reported as
// findings of the pseudo-analyzer "directive". This is the serial
// convenience form of Run; the CLI uses Run directly for parallel
// analysis, per-analyzer timing, and the suppression audit.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return Run(pkgs, analyzers, RunOptions{Serial: true}).Findings
}

// sortFindings orders findings by position, then analyzer name.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---- suppression directives ------------------------------------------------

// directiveRE matches "//parssspvet:allow name -- reason". The reason
// part is validated separately so its absence can be reported precisely.
var directiveRE = regexp.MustCompile(`^//parssspvet:allow\s+([a-z][a-z0-9-]*)\s*(--\s*(.*))?$`)

// allowDirective is one well-formed suppression, with usage tracking for
// the stale-suppression audit (-audit-allows).
type allowDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

// directives maps filename -> line -> analyzer name -> the directive
// allowed on that line and the next.
type directives map[string]map[int]map[string]*allowDirective

// allows reports whether a finding at pos is suppressed, marking the
// matching directive used.
func (d directives) allows(analyzer string, pos token.Position) bool {
	lines := d[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line (trailing comment)
	// and on the line immediately below (comment-above style).
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if dir := lines[line][analyzer]; dir != nil {
			dir.used = true
			return true
		}
	}
	return false
}

// all returns every well-formed directive, sorted by position.
func (d directives) all() []*allowDirective {
	var out []*allowDirective
	for _, lines := range d {
		for _, set := range lines {
			for _, dir := range set {
				out = append(out, dir)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// collectDirectives scans a package's comments for allow directives.
// Directives naming an unknown analyzer or missing the "-- reason" tail
// are returned as findings.
func collectDirectives(p *Package) (directives, []Finding) {
	dirs := make(directives)
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//parssspvet:") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed directive; expected //parssspvet:allow <analyzer> -- <reason>",
					})
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[3])
				if ByName(name) == nil {
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("directive names unknown analyzer %q", name),
					})
					continue
				}
				if reason == "" {
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "suppression without justification; add \"-- <reason>\"",
					})
					continue
				}
				fl := dirs[pos.Filename]
				if fl == nil {
					fl = make(map[int]map[string]*allowDirective)
					dirs[pos.Filename] = fl
				}
				set := fl[pos.Line]
				if set == nil {
					set = make(map[string]*allowDirective)
					fl[pos.Line] = set
				}
				set[name] = &allowDirective{pos: pos, analyzer: name}
			}
		}
	}
	return dirs, bad
}

// ---- shared AST helpers ----------------------------------------------------

// finding is a convenience constructor resolving the position.
func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...interface{}) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
}

// pkgNamePath returns the import path of the package an identifier
// names (e.g. "math/rand" for the "rand" in rand.Intn), or "" if the
// identifier does not name an imported package.
func (p *Package) pkgNamePath(expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// selectorCall unpacks a call of the form pkgOrRecv.Name(...) into its
// selector; it returns nil for any other call shape.
func selectorCall(call *ast.CallExpr) *ast.SelectorExpr {
	sel, _ := call.Fun.(*ast.SelectorExpr)
	return sel
}
