package lint_test

import (
	"testing"

	"parsssp/internal/lint"
)

// fixtureComm is a minimal stand-in for the real comm package, placed at
// the same import path so the analyzer's interface lookup works.
const fixtureComm = `package comm

type ReduceOp int

type Transport interface {
	Rank() int
	Size() int
	Exchange(out [][]byte) ([][]byte, error)
	AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error)
	Barrier() error
	Close() error
}

type GatherExchanger interface {
	ExchangeV(out [][][]byte) ([][]byte, error)
}
`

// badEngine drops transport errors every way the analyzer knows about:
// bare statement, blank assignment, and defer — on the interface, on a
// concrete implementing type, and on the GatherExchanger extension.
const badEngine = `package engine

import "parsssp/internal/comm"

type fake struct {
	comm.Transport
}

func Bad(t comm.Transport, f *fake, g comm.GatherExchanger) {
	t.Barrier()
	_ = t.Close()
	in, _ := t.Exchange(make([][]byte, t.Size()))
	_ = in
	f.Barrier()
	gin, _ := g.ExchangeV(make([][][]byte, t.Size()))
	_ = gin
	defer t.Close()
}

func Good(t comm.Transport) error {
	if err := t.Barrier(); err != nil {
		return err
	}
	return t.Close()
}
`

func TestTransportErrFlagsDroppedCollectiveErrors(t *testing.T) {
	got := runFixture(t, map[string]string{
		"internal/comm/comm.go":     fixtureComm,
		"internal/engine/engine.go": badEngine,
	}, lint.TransportErr)
	wantFindings(t, got, []string{
		"engine.go:10:2 transporterr",  // t.Barrier() statement
		"engine.go:11:6 transporterr",  // _ = t.Close()
		"engine.go:12:11 transporterr", // in, _ := t.Exchange(...)
		"engine.go:14:2 transporterr",  // f.Barrier() via embedded concrete type
		"engine.go:15:12 transporterr", // gin, _ := g.ExchangeV(...)
		"engine.go:17:8 transporterr",  // defer t.Close()
	})
}

func TestTransportErrStrictInCommLayer(t *testing.T) {
	// Inside parsssp/internal/comm/... any dropped error-returning call
	// is flagged, Transport or not: the comm layer is the I/O path.
	src := `package wire

type conn struct{}

func (conn) Close() error { return nil }

func shutdown(c conn) {
	c.Close()
}

func ok(c conn) error {
	return c.Close()
}
`
	got := runFixture(t, map[string]string{
		"internal/comm/comm.go":      fixtureComm,
		"internal/comm/wire/wire.go": src,
	}, lint.TransportErr)
	wantFindings(t, got, []string{
		"wire.go:8:2 transporterr",
	})
}

func TestTransportErrIgnoresUnrelatedClosers(t *testing.T) {
	// Close on a type that does not implement Transport, outside the comm
	// layer, is somebody else's concern (go vet, code review) — not ours.
	src := `package store

import "parsssp/internal/comm"

type file struct{}

func (file) Close() error { return nil }

func use(f file, t comm.Transport) error {
	defer f.Close()
	return t.Barrier()
}
`
	got := runFixture(t, map[string]string{
		"internal/comm/comm.go":   fixtureComm,
		"internal/store/store.go": src,
	}, lint.TransportErr)
	wantFindings(t, got, nil)
}
