package lint_test

import (
	"testing"

	"parsssp/internal/lint"
)

func TestWireTaintSinkKinds(t *testing.T) {
	src := `package wire

import "encoding/binary"

// Kind 1: wire-decoded value as a slice index.
func index(data []byte, table []int) int {
	v, _ := binary.Uvarint(data)
	return table[v]
}

// Kind 2: wire-decoded value as a slice bound.
func sliceBound(data []byte) []byte {
	n := binary.LittleEndian.Uint32(data)
	return data[:n]
}

// Kind 3: wire-decoded value as an allocation size.
func makeSize(data []byte) []int {
	n, _ := binary.Uvarint(data)
	return make([]int, n)
}

// Kind 4: wire-decoded value as a shift amount.
func shift(data []byte) uint64 {
	s, _ := binary.Uvarint(data)
	return 1 << s
}

// Parameters of type []byte carry wire data compositionally: an element
// read off one is as tainted as a decoder result.
func paramTaint(frame []byte) byte {
	off := int(frame[0])
	return frame[off]
}

// Taint flows through package-local helpers via the call summaries.
func readLen(b []byte) int {
	v, _ := binary.Uvarint(b)
	return int(v)
}

func viaHelper(frame []byte, table []int) int {
	n := readLen(frame)
	return table[n]
}
`
	got := runFixture(t, map[string]string{"internal/wire/wire.go": src}, lint.WireTaint)
	wantFindings(t, got, []string{
		"wire.go:8:15 wiretaint",  // index
		"wire.go:14:15 wiretaint", // sliceBound
		"wire.go:20:21 wiretaint", // makeSize
		"wire.go:26:14 wiretaint", // shift
		"wire.go:33:15 wiretaint", // paramTaint
		"wire.go:44:15 wiretaint", // viaHelper
	})
}

func TestWireTaintSanitizersAreClean(t *testing.T) {
	src := `package wire

import "encoding/binary"

// The bounds check is the sanitizer: a comparison mentioning the value
// clears its taint.
func checked(data []byte, table []int) int {
	v, _ := binary.Uvarint(data)
	if v >= uint64(len(table)) {
		return -1
	}
	return table[v]
}

// The hardened decode-loop shape from the frame readers: the
// bytes-consumed count is validated before advancing the offset.
func decodeLoop(frame []byte) int {
	total := 0
	for off := 0; off < len(frame); {
		v, n := binary.Uvarint(frame[off:])
		if n <= 0 {
			return -1
		}
		off += n
		total += int(v)
	}
	return total
}

// Masking bounds the value; so does a conversion to a narrow integer.
func masked(data []byte) int {
	var table [16]int
	v, _ := binary.Uvarint(data)
	i := byte(data[1])
	return table[v&0xf] + int(i)
}

// min clamps against a trusted bound.
func clamped(data []byte, table []int) int {
	v, _ := binary.Uvarint(data)
	return table[min(int(v), len(table)-1)]
}

// len of a tainted slice is a trusted local fact.
func lengths(frame []byte) []int {
	return make([]int, len(frame))
}
`
	got := runFixture(t, map[string]string{"internal/wire/wire.go": src}, lint.WireTaint)
	wantFindings(t, got, nil)
}
