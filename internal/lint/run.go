package lint

// The analysis driver. Loading stays serial (the module loader's
// type-check cache is not safe for concurrent use), but analysis is
// embarrassingly parallel across packages: each package is handed to one
// goroutine that runs every analyzer over it, so the wall-clock cost of
// the dataflow analyzers is hidden behind the breadth of the module.
// Per-analyzer wall-clock is aggregated across packages for -debug.

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// RunOptions configures a Run.
type RunOptions struct {
	// Serial disables the per-package goroutines (useful for debugging
	// and for deterministic profiling).
	Serial bool
}

// UnusedAllow is a suppression directive that no longer suppresses any
// finding: dead weight that hides nothing and should be deleted.
type UnusedAllow struct {
	// Pos is the directive's own position.
	Pos Position
	// Analyzer is the analyzer the directive names.
	Analyzer string
}

// Position is re-exported for the CLI without dragging go/token along.
type Position struct {
	Filename string
	Line     int
	Column   int
}

// RunResult is the outcome of one analysis run.
type RunResult struct {
	// Findings are the surviving findings, sorted by position.
	Findings []Finding
	// UnusedAllows lists the well-formed //parssspvet:allow directives
	// that suppressed nothing in this run, sorted by position. Only
	// meaningful when the run included the analyzer each directive names.
	UnusedAllows []UnusedAllow
	// Timing aggregates each analyzer's wall-clock across packages,
	// keyed by analyzer name ("directive" covers directive collection).
	Timing map[string]time.Duration
}

// Run applies the analyzers to the packages — in parallel across
// packages unless opts.Serial — filters findings through the
// suppression directives, and reports findings, stale suppressions, and
// per-analyzer timing.
func Run(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) RunResult {
	type pkgOut struct {
		findings []Finding
		unused   []UnusedAllow
		timing   map[string]time.Duration
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	analyzeOne := func(p *Package) pkgOut {
		out := pkgOut{timing: make(map[string]time.Duration, len(analyzers)+1)}
		t0 := time.Now()
		dirs, bad := collectDirectives(p)
		out.timing["directive"] = time.Since(t0)
		out.findings = append(out.findings, bad...)
		for _, a := range analyzers {
			t0 = time.Now()
			fs := a.Run(p)
			out.timing[a.Name] += time.Since(t0)
			for _, f := range fs {
				if dirs.allows(a.Name, f.Pos) {
					continue
				}
				out.findings = append(out.findings, f)
			}
		}
		for _, dir := range dirs.all() {
			if !dir.used && ran[dir.analyzer] {
				out.unused = append(out.unused, UnusedAllow{
					Pos:      Position{dir.pos.Filename, dir.pos.Line, dir.pos.Column},
					Analyzer: dir.analyzer,
				})
			}
		}
		return out
	}

	outs := make([]pkgOut, len(pkgs))
	if opts.Serial {
		for i, p := range pkgs {
			outs[i] = analyzeOne(p)
		}
	} else {
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for i, p := range pkgs {
			wg.Add(1)
			go func(i int, p *Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				outs[i] = analyzeOne(p)
			}(i, p)
		}
		wg.Wait()
	}

	res := RunResult{Timing: make(map[string]time.Duration)}
	for _, o := range outs {
		res.Findings = append(res.Findings, o.findings...)
		res.UnusedAllows = append(res.UnusedAllows, o.unused...)
		for name, d := range o.timing {
			res.Timing[name] += d
		}
	}
	sortFindings(res.Findings)
	sort.Slice(res.UnusedAllows, func(i, j int) bool {
		a, b := res.UnusedAllows[i].Pos, res.UnusedAllows[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return res
}
