package lint

// wiretaint tracks attacker-controlled integers from the moment they are
// decoded off the wire to the moment they reach a memory-shaping sink.
// PR 3 hardened the frame and record decoders by hand after exactly this
// bug shape: a varint length or vertex index read from a peer used to
// index a local slice or size an allocation without a bounds check. The
// analyzer makes that discipline permanent.
//
// Sources (bitWire): results of encoding/binary decoders (Uvarint,
// Varint, ReadUvarint, ReadVarint, and the ByteOrder Uint16/32/64
// methods), payloads returned by Exchange/ExchangeV (remote bytes), and
// — compositionally, so helpers stay honest without whole-program
// analysis — parameters of type []byte or [][]byte, which by convention
// carry undecoded wire data. Package-local calls propagate taint
// through the function summaries.
//
// Sanitizers clear the taint: any comparison mentioning the variable
// (the bounds check itself), masking (& with an untainted operand),
// modulo, the min/max builtins, and conversions to integer types of at
// most 16 bits (the value is then bounded by the type).
//
// Sinks, each a distinct finding kind:
//
//	index        s[v] on a slice, array, or string
//	slice bound  s[v:], s[:v], s[::v]
//	make size    make(T, v) or make(T, _, v)
//	shift        x << v or x >> v (v ≥ 64 is silently well-defined in
//	             Go but almost always a decode bug here)

import (
	"go/ast"
	"go/token"
	"go/types"
)

const wireTaintName = "wiretaint"

var WireTaint = &Analyzer{
	Name: wireTaintName,
	Doc: "flag wire-decoded integers reaching a slice index, slice bound, " +
		"make size, or shift amount without an intervening bounds check",
	Run: runWireTaint,
}

func runWireTaint(p *Package) []Finding {
	m := modelFor(p)
	var out []Finding
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, wireCheckFunc(m, fd)...)
		}
	}
	return out
}

func wireCheckFunc(m *pkgModel, fd *ast.FuncDecl) []Finding {
	p := m.p
	ev := &evaluator{m: m}
	entry := factMap{}
	for _, obj := range funcParams(p, fd) {
		if obj != nil && isWireParam(obj.Type()) {
			entry[obj] = bitWire
		}
	}
	c := buildCFG(fd.Body)
	in := solveForward(c, entry, ev.transfer)

	var out []Finding
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, expr ast.Expr, kind string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, p.finding(wireTaintName, pos,
			"wire-decoded value %s used as %s without a bounds check: a corrupt or malicious frame controls it",
			types.ExprString(expr), kind))
	}

	walkFacts(c, in, ev.transfer, func(f factMap, _ *Block, n ast.Node) {
		expr := nodeExpr(n)
		if expr == nil {
			return
		}
		ast.Inspect(expr, func(inner ast.Node) bool {
			switch e := inner.(type) {
			case *ast.IndexExpr:
				if !indexableSink(p, e.X) {
					return true
				}
				if ev.maskOf(f, e.Index)&bitWire != 0 {
					report(e.Index.Pos(), e.Index, "slice index")
				}
			case *ast.SliceExpr:
				for _, bound := range []ast.Expr{e.Low, e.High, e.Max} {
					if bound != nil && ev.maskOf(f, bound)&bitWire != 0 {
						report(bound.Pos(), bound, "slice bound")
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
						for _, size := range e.Args[1:] {
							if ev.maskOf(f, size)&bitWire != 0 {
								report(size.Pos(), size, "make size")
							}
						}
					}
				}
			case *ast.BinaryExpr:
				if e.Op == token.SHL || e.Op == token.SHR {
					if ev.maskOf(f, e.Y)&bitWire != 0 {
						report(e.Y.Pos(), e.Y, "shift amount")
					}
				}
			}
			return true
		})
	})
	return out
}

// isWireParam reports whether a parameter type conventionally carries
// raw wire bytes: []byte or [][]byte.
func isWireParam(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if isByteType(sl.Elem()) {
		return true
	}
	inner, ok := sl.Elem().Underlying().(*types.Slice)
	return ok && isByteType(inner.Elem())
}

func isByteType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// indexableSink reports whether indexing x with an untrusted value can
// fault: slices, arrays, and strings. Map lookups are safe.
func indexableSink(p *Package, x ast.Expr) bool {
	t := p.Info.TypeOf(x)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Basic:
		if b, ok := u.(*types.Basic); ok {
			return b.Info()&types.IsString != 0
		}
		return true
	case *types.Pointer:
		_, isArray := u.Elem().Underlying().(*types.Array)
		return isArray
	}
	return false
}
