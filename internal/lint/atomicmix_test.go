package lint_test

import (
	"strings"
	"testing"

	"parsssp/internal/lint"
)

// badCounter mixes access modes across functions: Inc publishes n with
// sync/atomic while Read loads it plainly. Both (atomic and plain in the
// same function) and NewC (composite-literal initialization) must not be
// flagged — the analyzer's unit of concurrency is the top-level function.
const badCounter = `package counters

import "sync/atomic"

type C struct {
	n int64
	m int64
}

func (c *C) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *C) Read() int64 {
	return c.n
}

func (c *C) Both() {
	atomic.AddInt64(&c.m, 1)
	c.m++
}

func NewC() *C {
	return &C{n: 0}
}
`

func TestAtomicMixFlagsCrossFunctionPlainAccess(t *testing.T) {
	got := runFixture(t, map[string]string{"internal/counters/c.go": badCounter}, lint.AtomicMix)
	wantFindings(t, got, []string{
		"c.go:15:9 atomicmix", // plain c.n in Read
	})
}

func TestAtomicMixMessageNamesBothFunctions(t *testing.T) {
	pkgs := loadFixture(t, map[string]string{"internal/counters/c.go": badCounter})
	findings := lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.AtomicMix})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(findings))
	}
	msg := findings[0].Message
	for _, want := range []string{"c.n", "Inc", "Read"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q should mention %q", msg, want)
		}
	}
}

func TestAtomicMixAllowsConsistentAtomicUse(t *testing.T) {
	src := `package counters

import "sync/atomic"

type C struct {
	n int64
}

func (c *C) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *C) Read() int64 {
	return atomic.LoadInt64(&c.n)
}
`
	got := runFixture(t, map[string]string{"internal/counters/c.go": src}, lint.AtomicMix)
	wantFindings(t, got, nil)
}

func TestAtomicMixAllowsWorkerPoolShape(t *testing.T) {
	// Atomic inside spawned closures, plain read after the barrier, all
	// within one declaration: the repo's runWorkers shape must stay clean.
	src := `package counters

import (
	"sync"
	"sync/atomic"
)

type pool struct {
	next int64
}

func (p *pool) run(n int) int64 {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt64(&p.next, 1)
		}()
	}
	wg.Wait()
	return p.next
}
`
	got := runFixture(t, map[string]string{"internal/counters/pool.go": src}, lint.AtomicMix)
	wantFindings(t, got, nil)
}
