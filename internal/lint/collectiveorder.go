package lint

// collectiveorder enforces the SPMD contract of the bulk-synchronous
// core: every rank must execute the same sequence of collectives
// (Exchange, ExchangeV, AllreduceInt64, Barrier) or the mesh deadlocks —
// one rank blocks in a collective its peers never enter. The analyzer
// finds collective call sites (including calls to package-local
// functions whose summaries say they perform a collective) and computes,
// over the CFG, the branches each site is control-dependent on. A branch
// whose condition is rank-varying — derived from Rank(), a rank field,
// or per-rank indexed data, via the shared dataflow facts — makes the
// collective statically divergent and is flagged, classified as:
//
//	branch      the collective sits on one arm of a rank-varying if
//	early-exit  a rank-varying arm returns/breaks before a collective
//	            that follows the join, so some ranks skip it
//	loop        the collective runs inside a loop whose trip count is
//	            rank-varying, so ranks disagree on the repetition count
//	switch      the collective sits in a case of a rank-varying switch
//	select      the collective sits in a select case; which case runs is
//	            timing-dependent and differs across ranks
//
// Two deliberate exemptions keep the real tree honest rather than noisy:
// error-return arms are uniform-enough (on the fail-fast paths every
// rank aborts the mesh via comm.Abort, PR 3), so an if whose divergent
// arm only returns a non-nil error is skipped; and the transport
// implementations themselves (parsssp/internal/comm/...) are excluded —
// rank-dependent control flow *inside* a collective (tree reductions,
// per-peer loops) is their job. The rank-0-admits pattern in ssspd's
// serve loop stays clean by construction: the admit decision is passed
// down as a parameter, and parameters are uniform under this
// context-insensitive analysis unless a caller proves otherwise.

import (
	"go/ast"
	"go/token"
	"strings"
)

const collectiveOrderName = "collectiveorder"

var CollectiveOrder = &Analyzer{
	Name: collectiveOrderName,
	Doc: "flag comm collectives whose execution is control-dependent on " +
		"rank-varying conditions: statically possible SPMD divergence that " +
		"deadlocks the bulk-synchronous mesh",
	Run: runCollectiveOrder,
}

func runCollectiveOrder(p *Package) []Finding {
	if p.Path == commPkgPath || strings.HasPrefix(p.Path, commPkgPath+"/") {
		return nil // transport internals are legitimately rank-dependent
	}
	m := modelFor(p)
	if len(m.transport) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, collectiveCheckFunc(m, fd)...)
		}
	}
	return out
}

// collectiveSite is one collective call found in a function body: either
// a direct transport method call or a call into a summarized
// package-local function that performs one.
type collectiveSite struct {
	call  *ast.CallExpr
	name  string // collective method name
	via   string // local callee name when indirect, "" when direct
	block *Block
}

func collectiveCheckFunc(m *pkgModel, fd *ast.FuncDecl) []Finding {
	p := m.p
	ev := &evaluator{m: m}
	c := buildCFG(fd.Body)
	in := solveForward(c, factMap{}, ev.transfer)

	var sites []collectiveSite
	// condMask[blockID] is the rank-variance mask of a branch block's
	// condition, evaluated with the facts in force at the branch.
	condMask := make(map[int]uint32)

	walkFacts(c, in, ev.transfer, func(f factMap, b *Block, n ast.Node) {
		if b.Branch != nil {
			switch br := b.Branch.(type) {
			case *ast.RangeStmt:
				if n == ast.Node(br) {
					// Divergence comes from the operand: per-rank data means
					// per-rank iteration counts.
					condMask[b.ID] |= ev.maskOf(f, br.X) & bitRank
				}
			case *ast.TypeSwitchStmt:
				if n == ast.Node(br.Assign) {
					condMask[b.ID] |= typeSwitchMask(ev, f, br) & bitRank
				}
			default:
				if b.Cond != nil && n == ast.Node(b.Cond) {
					condMask[b.ID] |= ev.maskOf(f, b.Cond) & bitRank
				}
			}
		}
		expr := nodeExpr(n)
		if expr == nil {
			return
		}
		ast.Inspect(expr, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := m.collectiveName(call); ok {
				sites = append(sites, collectiveSite{call, name, "", b})
				return true
			}
			if fn := m.calleeFunc(call); fn != nil {
				if sum := m.sums[fn]; sum != nil && sum.collective != "" {
					sites = append(sites, collectiveSite{call, sum.collective, fn.Name(), b})
				}
			}
			return true
		})
	})
	if len(sites) == 0 {
		return nil
	}

	// Tagless switches have their case conditions in the clause bodies;
	// fold their masks into the branch block after the walk.
	for _, b := range c.Blocks {
		if sw, ok := b.Branch.(*ast.SwitchStmt); ok && sw.Tag == nil {
			condMask[b.ID] |= taglessSwitchMask(ev, c, in, b, sw)
		}
	}

	pdom := c.postdominators()
	var out []Finding
	reported := make(map[string]bool) // one finding per (site, branch) pair
	for _, site := range sites {
		for _, dep := range c.controlDeps(site.block, pdom) {
			kind, ok := classifyDivergence(p, site, dep, condMask[dep.ID])
			if !ok {
				continue
			}
			key := posKey(p, site.call.Pos()) + "|" + posKey(p, dep.Branch.Pos())
			if reported[key] {
				continue
			}
			reported[key] = true
			what := site.name
			if site.via != "" {
				what = site.via + " (which performs " + site.name + ")"
			}
			out = append(out, p.finding(collectiveOrderName, site.call.Pos(),
				"collective %s is control-dependent on the rank-varying %s at %s: "+
					"ranks that take the other path skip or repeat the collective and the mesh deadlocks",
				what, kind, p.Fset.Position(dep.Branch.Pos())))
		}
	}
	return out
}

// classifyDivergence decides whether the dependence of site on branch
// block dep is a reportable divergence and names its kind.
func classifyDivergence(p *Package, site collectiveSite, dep *Block, mask uint32) (string, bool) {
	switch br := dep.Branch.(type) {
	case *ast.SelectStmt:
		// Which case runs is timing-dependent: inherently rank-varying.
		// But a collective after the select whose divergent cases all
		// fail fast (return non-nil errors) is the admission shape —
		// every rank that proceeds past the select proceeds together.
		inside := site.call.Pos() >= br.Pos() && site.call.End() <= br.End()
		if !inside && exitsOnlyWithErrors(p, br) {
			return "", false
		}
		return "select", true
	case *ast.ForStmt, *ast.RangeStmt:
		if mask&bitRank == 0 {
			return "", false
		}
		return "loop bound", true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		if mask&bitRank == 0 {
			return "", false
		}
		inside := site.call.Pos() >= dep.Branch.Pos() && site.call.End() <= dep.Branch.End()
		if !inside && exitsOnlyWithErrors(p, dep.Branch) {
			return "", false
		}
		return "switch condition", true
	case *ast.IfStmt:
		if mask&bitRank == 0 {
			return "", false
		}
		inside := site.call.Pos() >= br.Pos() && site.call.End() <= br.End()
		if inside {
			return "branch", true
		}
		// The collective follows the join: divergence needs an arm that
		// exits early. Fail-fast arms (every return carries a non-nil
		// error) are exempt — on those paths all ranks abort the mesh.
		if exitsOnlyWithErrors(p, br) {
			return "", false
		}
		return "early exit", true
	}
	return "", false
}

// exitsOnlyWithErrors reports whether every return statement inside a
// branch statement returns a non-nil error: the fail-fast shape
// `if bad { return ..., err }` that aborts all ranks together.
func exitsOnlyWithErrors(p *Package, br ast.Node) bool {
	errType := "error"
	sawReturn := false
	ok := true
	ast.Inspect(br, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			return true // named results: value unknown, assume fail-fast
		}
		for _, r := range ret.Results {
			t := p.Info.TypeOf(r)
			if t == nil || t.String() != errType {
				continue
			}
			if id, isIdent := ast.Unparen(r).(*ast.Ident); isIdent && id.Name == "nil" {
				ok = false
			}
			return true
		}
		ok = false // no error result at all: a plain early exit
		return true
	})
	return sawReturn && ok
}

// typeSwitchMask evaluates the rank-variance of a type switch's operand.
func typeSwitchMask(ev *evaluator, f factMap, br *ast.TypeSwitchStmt) uint32 {
	var x ast.Expr
	switch a := br.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return 0
	}
	return ev.maskOf(f, x)
}

// taglessSwitchMask ORs the masks of a tagless switch's case conditions,
// evaluated with the facts at the end of the branch block.
func taglessSwitchMask(ev *evaluator, c *CFG, in []factMap, b *Block, sw *ast.SwitchStmt) uint32 {
	f := in[b.ID]
	if f == nil {
		return 0
	}
	f = f.clone()
	for _, n := range b.Nodes {
		ev.transfer(f, n)
	}
	var mask uint32
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			mask |= ev.maskOf(f, e) & bitRank
		}
	}
	return mask
}

// posKey renders a position for dedup keys.
func posKey(p *Package, pos token.Pos) string {
	return p.Fset.Position(pos).String()
}
