package lint_test

import (
	"strings"
	"testing"

	"parsssp/internal/lint"
)

// badCore exercises all three nodeterminism rules inside a deterministic
// core package: a map range, a global math/rand draw, and wall-clock
// reads. Seeded constructors (rand.New, rand.NewSource) must pass.
const badCore = `package sssp

import (
	"math/rand"
	"time"
)

func Bad() (int, time.Time) {
	m := map[int]int{1: 1}
	s := 0
	for k := range m {
		s += k
	}
	r := rand.New(rand.NewSource(1))
	s += r.Intn(10)
	s += rand.Intn(10)
	d := time.Since(time.Now())
	_ = d
	return s, time.Now()
}
`

func TestNoDeterminismFlagsCorePackage(t *testing.T) {
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": badCore}, lint.NoDeterminism)
	wantFindings(t, got, []string{
		"bad.go:11:2 nodeterminism",  // for k := range m
		"bad.go:16:7 nodeterminism",  // rand.Intn
		"bad.go:17:7 nodeterminism",  // time.Since
		"bad.go:17:18 nodeterminism", // time.Now (inner)
		"bad.go:19:12 nodeterminism", // time.Now in return
	})
}

func TestNoDeterminismIgnoresNonCorePackages(t *testing.T) {
	// The identical source outside the deterministic core is fine: the
	// CLIs and experiment harnesses may use clocks and global randomness.
	got := runFixture(t, map[string]string{"internal/expt/bad.go": strings.Replace(badCore, "package sssp", "package expt", 1)}, lint.NoDeterminism)
	wantFindings(t, got, nil)
}

func TestNoDeterminismSuppressedByDirective(t *testing.T) {
	src := `package rmat

func MinKey(m map[int64]int) int64 {
	best := int64(1 << 62)
	//parssspvet:allow nodeterminism -- pure min reduction, order-insensitive
	for k := range m {
		if k < best {
			best = k
		}
	}
	return best
}
`
	got := runFixture(t, map[string]string{"internal/rmat/minkey.go": src}, lint.NoDeterminism)
	wantFindings(t, got, nil)
}

func TestNoDeterminismMessageDirectsToRNG(t *testing.T) {
	pkgs := loadFixture(t, map[string]string{"internal/sssp/bad.go": badCore})
	for _, f := range lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.NoDeterminism}) {
		if strings.Contains(f.Message, "math/rand") && !strings.Contains(f.Message, "parsssp/internal/rng") {
			t.Errorf("math/rand finding should direct to internal/rng: %q", f.Message)
		}
	}
}
