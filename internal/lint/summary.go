package lint

// Call summaries: the intra-module layer that lets facts propagate
// across calls within a package. Each package-local function with a body
// gets a funcSummary describing, context-insensitively, (a) the fact
// mask of every result expressed over the parameter bits, (b) which
// parameters the function hands back to a pool on some path, and (c)
// whether the function (transitively) performs a comm collective.
//
// Summaries are computed by running the real CFG dataflow over each
// body with the parameters seeded to their param bits, using the current
// summary table for calls between package-local functions, and
// iterating the whole package to fixpoint. Masks and flags only grow
// across rounds (results are OR-accumulated), so the iteration
// terminates; a generous round cap guards against surprises.

import (
	"go/ast"
	"go/types"
)

// funcSummary is one function's context-insensitive dataflow summary.
type funcSummary struct {
	// results holds one mask per result; bits 0..15 mean "derived from
	// parameter i" (receiver = parameter 0) and are substituted with the
	// argument masks at each call site.
	results []uint32
	// releases[i] reports that the function returns parameter i to a
	// pool on at least one path, so callers must treat the argument as
	// released.
	releases []bool
	// collective names the first comm collective the function performs,
	// directly or through package-local callees; "" when none. A call to
	// a function with a non-empty collective is itself a collective site
	// for ordering purposes.
	collective string
}

// summaryRounds caps the package fixpoint iteration. Masks grow
// monotonically, so convergence is typically 2-3 rounds; the cap only
// bounds pathological call graphs.
const summaryRounds = 8

// computeSummaries fills m.sums for every package-local function.
func (m *pkgModel) computeSummaries() {
	m.sums = make(map[*types.Func]*funcSummary)
	type fnBody struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnBody
	for _, file := range m.p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := m.p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			nparams := sig.Params().Len()
			if sig.Recv() != nil {
				nparams++
			}
			m.sums[fn] = &funcSummary{
				results:  make([]uint32, sig.Results().Len()),
				releases: make([]bool, nparams),
			}
			fns = append(fns, fnBody{fn, fd})
		}
	}
	for round := 0; round < summaryRounds; round++ {
		changed := false
		for _, fb := range fns {
			if m.summarizeOne(fb.fn, fb.decl) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// summarizeOne recomputes one function's summary against the current
// table, reporting whether the summary grew.
func (m *pkgModel) summarizeOne(fn *types.Func, decl *ast.FuncDecl) bool {
	sum := m.sums[fn]
	params := funcParams(m.p, decl)
	ev := &evaluator{m: m, params: make(map[types.Object]int)}
	entry := make(factMap, len(params))
	for i, obj := range params {
		if obj == nil {
			continue
		}
		ev.params[obj] = i
		entry[obj] = paramBit(i)
	}

	c := buildCFG(decl.Body)
	in := solveForward(c, entry, ev.transfer)

	changed := false
	grow := func(i int, mask uint32) {
		mask &^= bitPooled | bitLive | bitReleased // flow-local, never exported
		if i < len(sum.results) && sum.results[i]|mask != sum.results[i] {
			sum.results[i] |= mask
			changed = true
		}
	}

	sig := fn.Type().(*types.Signature)
	namedResults := resultObjects(m.p, decl)
	walkFacts(c, in, ev.transfer, func(f factMap, _ *Block, n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 0 {
			// Bare return: named results carry the facts.
			for i, obj := range namedResults {
				if obj != nil {
					grow(i, f[obj])
				}
			}
			return
		}
		if len(ret.Results) == 1 && sig.Results().Len() > 1 {
			// return f(...): forward the callee's tuple.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				for i, mask := range ev.resultMasks(f, call) {
					grow(i, mask)
				}
				return
			}
		}
		for i, r := range ret.Results {
			grow(i, ev.maskOf(f, r))
		}
	})

	// A parameter that reaches any exit released was handed back to its
	// pool on some path.
	exit := exitFacts(c, in, ev.transfer)
	for i, obj := range params {
		if obj == nil || i >= len(sum.releases) || sum.releases[i] {
			continue
		}
		if exit[obj]&bitReleased != 0 {
			sum.releases[i] = true
			changed = true
		}
	}

	if sum.collective == "" {
		if name := m.findCollective(decl.Body); name != "" {
			sum.collective = name
			changed = true
		}
	}
	return changed
}

// findCollective returns the first collective performed in body, either
// directly or through a summarized package-local callee.
func (m *pkgModel) findCollective(body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := m.collectiveName(call); ok {
			found = name
			return false
		}
		if fn := m.calleeFunc(call); fn != nil {
			if sum := m.sums[fn]; sum != nil && sum.collective != "" {
				found = sum.collective
				return false
			}
		}
		return true
	})
	return found
}

// resultObjects returns the named result objects of a declaration, nil
// entries for unnamed results.
func resultObjects(p *Package, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Results == nil {
		return nil
	}
	for _, field := range decl.Type.Results.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, p.Info.Defs[name])
		}
	}
	return out
}
