package lint_test

import (
	"testing"

	"parsssp/internal/lint"
)

func TestPoolSafetyLifetimeKinds(t *testing.T) {
	src := `package pool

type buf struct{ b []byte }

// pool is detected structurally: put() makes it a pool of *buf, get()
// becomes an acquisition, and free is a hand-off channel.
type pool struct {
	free chan *buf
}

func (p *pool) get() *buf  { return <-p.free }
func (p *pool) put(b *buf) { p.free <- b }

type rankGraph struct {
	scratch *buf
}

var global *buf

// Kind 1: use after release — the pool may have re-issued the buffer.
func useAfterPut(p *pool) {
	b := p.get()
	p.put(b)
	b.b[0] = 1
}

// Kind 2: double release — two future owners get the same buffer.
func doublePut(p *pool) {
	b := p.get()
	p.put(b)
	p.put(b)
}

// Kind 3: leak — one path reaches the exit still owning the buffer.
func leak(p *pool, cond bool) {
	b := p.get()
	if cond {
		p.put(b)
	}
}

// Kind 4: escape — a pooled buffer stored into state that outlives the
// query: a package-level variable or a shared plane (rankGraph) field.
func escapeGlobal(p *pool) {
	b := p.get()
	global = b
	p.put(b)
}

func escapePlane(p *pool, g *rankGraph) {
	b := p.get()
	g.scratch = b
	p.put(b)
}

// A release one call deep still counts, via the call summaries.
func dispose(p *pool, b *buf) { p.put(b) }

func useAfterHelper(p *pool) []byte {
	b := p.get()
	dispose(p, b)
	return b.b
}
`
	got := runFixture(t, map[string]string{"internal/pool/pool.go": src}, lint.PoolSafety)
	wantFindings(t, got, []string{
		"pool.go:24:2 poolsafety", // useAfterPut: use of b after release
		"pool.go:31:2 poolsafety", // doublePut: second put
		"pool.go:36:7 poolsafety", // leak: acquired here, not released on every path
		"pool.go:46:2 poolsafety", // escapeGlobal
		"pool.go:52:2 poolsafety", // escapePlane
		"pool.go:62:9 poolsafety", // useAfterHelper: use after summarized release
	})
}

func TestPoolSafetyDisciplinedUsesAreClean(t *testing.T) {
	src := `package pool

import "errors"

var errOops = errors.New("oops")

type buf struct{ b []byte }

type pool struct {
	free chan *buf
}

func (p *pool) get() *buf  { return <-p.free }
func (p *pool) put(b *buf) { p.free <- b }

// The canonical shape: acquire, defer the release, use freely.
func deferred(p *pool) {
	b := p.get()
	defer p.put(b)
	b.b = append(b.b, 1)
}

// Error returns are fail-fast paths: the mesh aborts and the pool is
// torn down, so not releasing there is not a leak.
func errExempt(p *pool, fail bool) error {
	b := p.get()
	if fail {
		return errOops
	}
	p.put(b)
	return nil
}

// Passing the buffer to an unknown callee transfers ownership.
func handoff(p *pool, sink func(*buf)) {
	b := p.get()
	sink(b)
}

// Returning the buffer transfers ownership to the caller.
func produce(p *pool) *buf {
	return p.get()
}

// Releasing via the hand-off channel directly is a release.
func chanRelease(p *pool) {
	b := p.get()
	p.free <- b
}

// Reassignment starts a fresh lifetime: no stale release state.
func reuse(p *pool) {
	b := p.get()
	p.put(b)
	b = p.get()
	b.b = nil
	p.put(b)
}
`
	got := runFixture(t, map[string]string{"internal/pool/pool.go": src}, lint.PoolSafety)
	wantFindings(t, got, nil)
}
