package lint

import (
	"go/ast"
	"go/types"
)

// WGMisuse flags the two WaitGroup mistakes that break the engine's
// superstep discipline (every goroutine that Sends must reach its
// Barrier):
//
//   - wg.Add called inside the spawned goroutine: the parent can reach
//     wg.Wait before the goroutine is scheduled, so Wait returns with the
//     work still outstanding. Add must happen before the go statement.
//
//   - wg.Done not guarded by defer: any panic (or early return grown in
//     a later edit) between the work and the Done leaves the counter
//     unbalanced and deadlocks every rank at the next barrier.
const wgMisuseName = "wgmisuse"

var WGMisuse = &Analyzer{
	Name: wgMisuseName,
	Doc: "flag WaitGroup.Add inside the spawned goroutine and " +
		"WaitGroup.Done calls not guarded by defer",
	Run: runWGMisuse,
}

func runWGMisuse(p *Package) []Finding {
	var out []Finding
	reportedAdd := make(map[*ast.CallExpr]bool) // dedup Add findings under nested go statements
	for _, file := range p.Files {
		// Pass 1: collect Done calls sanctioned by defer — the deferred
		// call itself, or calls inside a deferred function literal.
		deferred := make(map[*ast.CallExpr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			deferred[d.Call] = true
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && isWaitGroupMethod(p, call, "Done") {
						deferred[call] = true
					}
					return true
				})
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report := func(call *ast.CallExpr) {
					if reportedAdd[call] {
						return
					}
					reportedAdd[call] = true
					out = append(out, p.finding(wgMisuseName, call.Pos(),
						"WaitGroup.Add runs inside the spawned goroutine; Wait can pass before it executes — call Add before the go statement"))
				}
				if isWaitGroupMethod(p, n.Call, "Add") {
					report(n.Call)
					return true
				}
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						if call, ok := m.(*ast.CallExpr); ok && isWaitGroupMethod(p, call, "Add") {
							report(call)
						}
						return true
					})
				}
			case *ast.CallExpr:
				if isWaitGroupMethod(p, n, "Done") && !deferred[n] {
					out = append(out, p.finding(wgMisuseName, n.Pos(),
						"WaitGroup.Done is not deferred; a panic before it deadlocks Wait — use defer wg.Done()"))
				}
			}
			return true
		})
	}
	return out
}

// isWaitGroupMethod reports whether call invokes sync.WaitGroup's method
// with the given name (directly or through an embedded field).
func isWaitGroupMethod(p *Package, call *ast.CallExpr, name string) bool {
	sel := selectorCall(call)
	if sel == nil || sel.Sel.Name != name {
		return false
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
