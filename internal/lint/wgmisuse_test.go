package lint_test

import (
	"testing"

	"parsssp/internal/lint"
)

func TestWGMisuseFlagsAddInGoroutineAndBareDone(t *testing.T) {
	src := `package pool

import "sync"

func Bad(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1)
			work()
			wg.Done()
		}()
	}
	wg.Wait()
}

func work() {}
`
	got := runFixture(t, map[string]string{"internal/pool/pool.go": src}, lint.WGMisuse)
	wantFindings(t, got, []string{
		"pool.go:9:4 wgmisuse",  // wg.Add inside the spawned goroutine
		"pool.go:11:4 wgmisuse", // wg.Done not deferred
	})
}

func TestWGMisuseAllowsCanonicalShape(t *testing.T) {
	src := `package pool

import "sync"

func Good(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func DeferredLiteral(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			work()
			wg.Done()
		}()
		work()
	}()
	wg.Wait()
}

func work() {}
`
	got := runFixture(t, map[string]string{"internal/pool/pool.go": src}, lint.WGMisuse)
	wantFindings(t, got, nil)
}

func TestWGMisuseIgnoresOtherAddMethods(t *testing.T) {
	// Add/Done on non-WaitGroup types (here a custom accumulator) are
	// out of scope even inside goroutines.
	src := `package pool

type acc struct{ n int }

func (a *acc) Add(d int) { a.n += d }
func (a *acc) Done()     {}

func use(a *acc) {
	go func() {
		a.Add(1)
		a.Done()
	}()
}
`
	got := runFixture(t, map[string]string{"internal/pool/pool.go": src}, lint.WGMisuse)
	wantFindings(t, got, nil)
}
