// Graph500-style benchmark procedure through the public API: generate
// the specified graph, pick random search keys, run one SSSP per key,
// validate every tree structurally, and report the harmonic-mean TEPS —
// the full submission pipeline of the benchmark the paper targets.
package main

import (
	"flag"
	"fmt"
	"log"

	"parsssp"
)

func main() {
	var (
		scale  = flag.Int("scale", 14, "log2 vertex count")
		family = flag.Int("family", 1, "R-MAT family (1 or 2)")
		ranks  = flag.Int("ranks", 4, "logical ranks")
		keys   = flag.Int("keys", 8, "search keys")
		seed   = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	gen := parsssp.GenerateRMAT1
	delta := parsssp.Weight(25)
	if *family == 2 {
		gen = parsssp.GenerateRMAT2
		delta = 40
	}
	g, err := gen(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: RMAT-%d scale %d — %d vertices, %d edges\n",
		*family, *scale, g.NumVertices(), g.NumEdges())

	roots, err := parsssp.PickRoots(g, *keys, *seed^0xBEEF)
	if err != nil {
		log.Fatal(err)
	}

	opts := parsssp.LBOptOptions(delta)
	opts.Threads = 2

	// Validation pass: every key's tree must check out structurally.
	for _, root := range roots {
		res, err := parsssp.Run(g, *ranks, root, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := parsssp.ValidateTree(g, root, res.Dist, res.Parent); err != nil {
			log.Fatalf("key %d: %v", root, err)
		}
	}
	fmt.Printf("validation: %d/%d trees structurally valid\n", len(roots), len(roots))

	// Timed pass: the benchmark figure of merit.
	batch, err := parsssp.RunBatch(g, *ranks, roots, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harmonic mean TEPS: %.4g (%.6f GTEPS) over %d keys\n",
		batch.HarmonicMeanTEPS, batch.HarmonicMeanTEPS/1e9, len(roots))
	fmt.Printf("mean query: %.2f ms, mean relaxations: %.0f (graph has %d directed edges)\n",
		batch.MeanTimeSeconds*1e3, batch.MeanRelaxations, 2*g.NumEdges())
}
