// Quickstart: generate a Graph500-style R-MAT graph, run the paper's OPT
// algorithm on an 8-rank in-process machine, and inspect the result.
package main

import (
	"fmt"
	"log"

	"parsssp"
)

func main() {
	// A scale-14 RMAT-1 graph: 16k vertices, ~256k undirected edges,
	// weights uniform in [0, 255].
	g, err := parsssp.GenerateRMAT1(14, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// OPT-25 is Δ-stepping with Δ=25 plus the paper's pruning (push/pull
	// direction optimization + IOS) and hybridization heuristics.
	opts := parsssp.OptOptions(25)
	opts.Threads = 2

	res, err := parsssp.Run(g, 8, 0, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %v wall clock, %.4f GTEPS\n",
		res.Stats.Total, res.Stats.GTEPS(g.NumEdges()))
	fmt.Printf("reached %d vertices in %d epochs / %d phases (hybrid switch: %v)\n",
		res.Stats.Reached, res.Stats.Epochs, res.Stats.Phases, res.Stats.HybridSwitched)
	fmt.Printf("relaxations: %d (vs %d edges — pruning relaxed only a fraction)\n",
		res.Stats.Relax.Total(), 2*g.NumEdges())

	// Distances are plain int64s; Inf marks unreachable vertices.
	var sample []parsssp.Vertex
	for v := parsssp.Vertex(0); v < 8; v++ {
		sample = append(sample, v)
	}
	for _, v := range sample {
		if res.Dist[v] == parsssp.Inf {
			fmt.Printf("dist[%d] = unreachable\n", v)
		} else {
			fmt.Printf("dist[%d] = %d\n", v, res.Dist[v])
		}
	}

	// Cross-check against the sequential reference.
	ref, err := parsssp.Dijkstra(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	for v := range res.Dist {
		if res.Dist[v] != ref.Dist[v] {
			log.Fatalf("mismatch at vertex %d", v)
		}
	}
	fmt.Println("distances verified against sequential Dijkstra")
}
