// Social-network analytics: the workload class that motivates the paper
// (§I — web-scale social graphs with heavy-tailed degree distributions).
//
// This example builds a skewed social graph, compares the baseline
// Δ-stepping algorithm (Del) against the fully optimized one (Opt) the
// way the paper's §IV.H does, and then uses shortest-path distances for a
// small analytics task: closeness centrality of a handful of users.
package main

import (
	"fmt"
	"log"

	"parsssp"
)

func main() {
	// A Friendster-like stand-in: 40k users, heavy-tailed degrees.
	g, err := parsssp.GenerateRMAT1(15, 7)
	if err != nil {
		log.Fatal(err)
	}
	stats := struct{ n, maxDeg int }{g.NumVertices(), g.MaxDegree()}
	fmt.Printf("social graph: %d users, %d ties, hubbiest user has %d ties\n",
		stats.n, g.NumEdges(), stats.maxDeg)

	const ranks = 8
	root := firstActive(g)

	// Baseline vs optimized, as in the paper's real-world table.
	del := parsssp.DelOptions(40)
	del.Threads = 2
	opt := parsssp.LBOptOptions(40)
	opt.Threads = 2

	resDel, err := parsssp.Run(g, ranks, root, del)
	if err != nil {
		log.Fatal(err)
	}
	resOpt, err := parsssp.Run(g, ranks, root, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Del-40: %8v, %9d relaxations\n", resDel.Stats.Total, resDel.Stats.Relax.Total())
	fmt.Printf("Opt-40: %8v, %9d relaxations (%.1fx fewer)\n",
		resOpt.Stats.Total, resOpt.Stats.Relax.Total(),
		float64(resDel.Stats.Relax.Total())/float64(resOpt.Stats.Relax.Total()))

	// Closeness centrality of sampled users (one SSSP query each), via
	// the analytics API.
	seeds, err := parsssp.PickRoots(g, 6, 99)
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := parsssp.TopKCloseness(g, ranks, seeds, 4, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("closeness centrality (higher = more central):")
	for _, r := range ranked {
		fmt.Printf("  user %6d: %.6f (degree %d)\n", r.V, r.Score, g.Degree(r.V))
	}

	// How wide is the network? Weighted diameter bounds in a few sweeps.
	b, err := parsssp.Diameter(g, ranks, root, opt, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted diameter of the main component: between %d and %d\n", b.Lower, b.Upper)
}

func firstActive(g *parsssp.Graph) parsssp.Vertex {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(parsssp.Vertex(v)) > 0 {
			return parsssp.Vertex(v)
		}
	}
	return 0
}
