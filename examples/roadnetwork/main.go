// Road-network routing: the opposite regime from R-MAT graphs — uniform
// low degree, large diameter — where the Δ parameter trade-off looks very
// different. The paper's §II characterization (work done vs number of
// phases) is directly visible here: small Δ does little redundant work
// but needs many buckets; large Δ collapses the buckets but re-relaxes
// edges.
package main

import (
	"fmt"
	"log"

	"parsssp"
)

func main() {
	// A 300×300 grid "city" with travel times 1–60 per segment.
	g, err := parsssp.GenerateGrid(300, 300, 1, 60, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d segments\n",
		g.NumVertices(), g.NumEdges())

	const ranks = 4
	src := parsssp.Vertex(0) // north-west corner

	fmt.Println("\nΔ sweep (Opt algorithm, 4 ranks):")
	fmt.Printf("%8s %12s %10s %10s %12s\n", "Δ", "time", "epochs", "phases", "relaxations")
	for _, delta := range []parsssp.Weight{1, 10, 30, 60, 120, 600} {
		opts := parsssp.OptOptions(delta)
		opts.Threads = 2
		res, err := parsssp.Run(g, ranks, src, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12v %10d %10d %12d\n",
			delta, res.Stats.Total, res.Stats.Epochs, res.Stats.Phases, res.Stats.Relax.Total())
	}

	// Route length report: distances to the other three corners.
	opts := parsssp.OptOptions(30)
	opts.Threads = 2
	res, err := parsssp.Run(g, ranks, src, opts)
	if err != nil {
		log.Fatal(err)
	}
	n := 300
	corners := map[string]parsssp.Vertex{
		"north-east": parsssp.Vertex(n - 1),
		"south-west": parsssp.Vertex((n - 1) * n),
		"south-east": parsssp.Vertex(n*n - 1),
	}
	fmt.Println("\nshortest travel times from the north-west corner:")
	for name, v := range corners {
		fmt.Printf("  %-10s %d\n", name, res.Dist[v])
	}

	// Reconstruct the actual route to the far corner from the parent
	// pointers.
	route, err := parsssp.PathTo(res.Parent, corners["south-east"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroute to the south-east corner passes %d intersections\n", len(route))

	ref, err := parsssp.Dijkstra(g, src)
	if err != nil {
		log.Fatal(err)
	}
	for v := range res.Dist {
		if res.Dist[v] != ref.Dist[v] {
			log.Fatalf("mismatch at %d", v)
		}
	}
	fmt.Println("verified against sequential Dijkstra")
}
