// Distributed deployment: runs a real multi-process SSSP machine on
// localhost by spawning one worker process per rank over the TCP
// transport (the repo's MPI substitute), then launching the query.
//
// The parent process is rank 0; children are ranks 1..P-1 running this
// same binary with -worker.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"

	"parsssp/internal/comm"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
)

var (
	workerRank = flag.Int("worker", -1, "internal: run as worker with this rank")
	numRanks   = flag.Int("ranks", 4, "number of worker processes")
	scale      = flag.Int("scale", 12, "log2 vertex count")
	basePort   = flag.Int("port", 9640, "first TCP port; rank i uses port+i")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if *workerRank >= 0 {
		runRank(*workerRank)
		return
	}

	// Parent: spawn ranks 1..P-1, then participate as rank 0.
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	var children []*exec.Cmd
	for r := 1; r < *numRanks; r++ {
		cmd := exec.Command(self,
			"-worker", fmt.Sprint(r),
			"-ranks", fmt.Sprint(*numRanks),
			"-scale", fmt.Sprint(*scale),
			"-port", fmt.Sprint(*basePort))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		children = append(children, cmd)
	}
	runRank(0)
	for _, cmd := range children {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("worker failed: %v", err)
		}
	}
}

func runRank(rank int) {
	log.SetPrefix(fmt.Sprintf("[rank %d] ", rank))
	addrs := make([]string, *numRanks)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", *basePort+i)
	}

	// All ranks deterministically generate the same graph.
	g, err := rmat.Generate(rmat.Family1(*scale, 1234))
	if err != nil {
		log.Fatal(err)
	}
	t, err := tcptransport.New(tcptransport.Config{Addrs: addrs, Rank: rank})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := t.Close(); err != nil {
			log.Printf("transport close: %v", err)
		}
	}()

	pd, err := partition.New(partition.Block, g.NumVertices(), *numRanks)
	if err != nil {
		log.Fatal(err)
	}
	opts := sssp.OptOptions(25)
	opts.Threads = 2
	rr, err := sssp.RunRank(g, pd, 0, opts, t, 0)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("finished in %v (%d relaxations on this rank)",
		rr.Stats.Total, rr.Stats.Relax.Total())

	// Gather a simple machine-wide summary on rank 0: the number of
	// locally reached vertices per rank.
	var reached int64
	for _, d := range rr.LocalDist {
		if d < graph.Inf {
			reached++
		}
	}
	sum, err := t.AllreduceInt64([]int64{reached}, comm.Sum)
	if err != nil {
		log.Fatal(err)
	}
	if rank == 0 {
		fmt.Printf("machine of %d ranks reached %d / %d vertices at %.4f GTEPS\n",
			*numRanks, sum[0], g.NumVertices(), rr.Stats.GTEPS(g.NumEdges()))
	}
}
