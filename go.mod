module parsssp

go 1.22
