package parsssp_test

import (
	"reflect"
	"testing"

	"parsssp"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := parsssp.GenerateRMAT1(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	var root parsssp.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(parsssp.Vertex(v)) > 0 {
			root = parsssp.Vertex(v)
			break
		}
	}
	res, err := parsssp.Run(g, 4, root, parsssp.OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := parsssp.Dijkstra(g, root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dist, ref.Dist) {
		t.Error("public API distances mismatch Dijkstra")
	}
	if res.Stats.Reached == 0 || res.Stats.GTEPS(g.NumEdges()) <= 0 {
		t.Errorf("degenerate stats: %+v", res.Stats)
	}
}

func TestPublicAPIFromEdges(t *testing.T) {
	g, err := parsssp.FromEdges(3, []parsssp.Edge{{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 6}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := parsssp.Run(g, 2, 0, parsssp.DelOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	want := []parsssp.Dist{0, 4, 10}
	if !reflect.DeepEqual(res.Dist, want) {
		t.Errorf("Dist = %v, want %v", res.Dist, want)
	}
}

func TestPublicAPIRunSplit(t *testing.T) {
	g, err := parsssp.GenerateRMAT1(10, 11)
	if err != nil {
		t.Fatal(err)
	}
	var root parsssp.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(parsssp.Vertex(v)) > 0 {
			root = parsssp.Vertex(v)
			break
		}
	}
	res, err := parsssp.RunSplit(g, 4, root, parsssp.LBOptOptions(25), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dist) != g.NumVertices() {
		t.Fatalf("split result has %d distances for %d vertices",
			len(res.Dist), g.NumVertices())
	}
	ref, err := parsssp.Dijkstra(g, root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dist, ref.Dist) {
		t.Error("RunSplit distances mismatch Dijkstra")
	}
}

func TestPublicAPISequentialReferences(t *testing.T) {
	g, err := parsssp.GenerateGrid(10, 10, 1, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	dij, err := parsssp.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := parsssp.BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := parsssp.SeqDeltaStepping(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dij.Dist, bf.Dist) || !reflect.DeepEqual(dij.Dist, ds.Dist) {
		t.Error("sequential references disagree")
	}
}
