# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race chaos lint vet bench bench-json bench-serve-json bench-dynamic-json bench-async-json bench-stepping-json experiments fuzz clean

all: build test lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fault-injection suite under the race detector with a tight timeout:
# every injected failure (rank death, stall, truncated/corrupt frame)
# must surface as an error on every rank — a hang here is a bug, and the
# timeout is the hang detector. See DESIGN.md "Failure semantics".
chaos:
	go test -race -count=1 -timeout 180s \
		-run 'Chaos|Fault|Abort|PeerKill|Timeout|Close|Machine' \
		./internal/comm/... ./internal/sssp/

vet:
	go vet ./...

# Domain-specific invariants (determinism, atomics, transport errors,
# WaitGroup discipline, collective ordering, pooled-buffer lifetimes,
# wire-data taint); see DESIGN.md "Static analysis & invariants". One
# process, packages analyzed in parallel; the committed baseline is the
# one-way ratchet for pre-existing findings, and stale suppressions fail.
lint: vet
	go run ./cmd/parssspvet -baseline lint.baseline.json -audit-allows ./...

bench:
	go test -bench=. -benchmem .

# Archive the communication-layer benchmarks (GTEPS, wire bytes per
# record/relaxation, allocs per query) as BENCH_comm.json for diffing
# across commits. See EXPERIMENTS.md "Communication layer".
bench-json:
	go test -run '^$$' -bench BenchmarkCommWire -benchmem -benchtime 20x . \
		| go run ./cmd/benchjson -out BENCH_comm.json

# Archive the serving benchmarks (queries/sec of a warm query pool at
# concurrency 1/2/4) as BENCH_serve.json. See EXPERIMENTS.md "Query
# throughput".
bench-serve-json:
	go test -run '^$$' -bench BenchmarkServeThroughput -benchtime 10x . \
		| go run ./cmd/benchjson -out BENCH_serve.json

# Archive the dynamic-update benchmarks as BENCH_dynamic.json:
# end-to-end incremental repair vs full recompute after an edge-update
# batch (BenchmarkIncrementalRepair), plus the isolated version-advance
# cost — patched CSR/plane apply vs legacy full rebuild at batch sizes
# 4/32/256 (BenchmarkPlaneApply). Scale 13 / 4 ranks throughout. See
# EXPERIMENTS.md "Dynamic updates".
bench-dynamic-json:
	{ go test -run '^$$' -bench BenchmarkIncrementalRepair -benchtime 16x . ; \
	  go test -run '^$$' -bench BenchmarkPlaneApply -benchtime 64x ./internal/sssp ; } \
		| go run ./cmd/benchjson -out BENCH_dynamic.json

# Archive the execution-mode benchmarks (asynchronous barrier-free
# relaxation vs BSP at 0 and 100µs emulated latency, scale 13 / 4
# ranks) as BENCH_async.json. See EXPERIMENTS.md "Asynchronous
# execution".
bench-async-json:
	go test -run '^$$' -bench BenchmarkAsyncVsBSP -benchtime 10x . \
		| go run ./cmd/benchjson -out BENCH_async.json

# Archive the stepping-policy comparison (Δ-, Radius- and ρ-stepping on
# scale-13 R-MAT and a long-diameter road-like grid, plus the TunePolicy
# winner per family as picked-* metrics) as BENCH_stepping.json. See
# EXPERIMENTS.md "Stepping policies".
bench-stepping-json:
	go test -run '^$$' -bench BenchmarkSteppingPolicies -benchtime 10x . \
		| go run ./cmd/benchjson -out BENCH_stepping.json

# Regenerate every table/figure of the paper (see EXPERIMENTS.md).
experiments:
	go run ./cmd/bench -experiment all -scale 13 -ranks 1,2,4,8 -threads 2 -roots 3

fuzz:
	go test -fuzz FuzzReadEdgeList -fuzztime 30s ./internal/graph/
	go test -fuzz FuzzBuilderInvariants -fuzztime 30s ./internal/graph/

clean:
	go clean ./...
